(** Live observability endpoint and the transport under [eprocd]: a
    minimal built-in HTTP responder on a dedicated domain.

    Deliberately tiny: loopback only, one request per connection, no
    keep-alive, no external dependency.  Two entry points share the
    listener machinery:

    - {!start} — the legacy read-only observability surface ([/metrics],
      [/progress], [/healthz], [/quit]) used by [eproc --listen];
    - {!start_router} — a full request router (method + path + query +
      body) with fixed or chunked-streaming responses, the transport the
      [Ewalk_serve] session daemon mounts its routes on.

    [/quit] is handled by the listener itself in both modes: it sets the
    stop flag and answers ["bye"] — the response is fully written before
    the connection closes, so a client that reads ["bye"] knows the
    daemon committed to shutting down.

    Handler closures run on the serving domain, concurrently with the
    walk — registry snapshots are safe ({!Metrics.snapshot} flushes
    pending shards and locks per instrument); anything else they read
    must be thread-safe on its own. *)

type t

(** {1 Router mode} *)

type request = {
  rq_meth : string;  (** uppercased: ["GET"], ["POST"], ["DELETE"], … *)
  rq_path : string;  (** percent-decoded path, query string stripped *)
  rq_query : (string * string) list;
      (** decoded [k=v] pairs, in order of appearance *)
  rq_body : string;  (** as many bytes as [Content-Length] announced *)
}

type response
(** Either a fixed body or a chunked stream; build with {!respond} /
    {!respond_stream}. *)

val respond : ?status:int -> ?content_type:string -> string -> response
(** Fixed-body response (default [status] 200, content type
    [application/json]).  Written with [Content-Length] and
    [Connection: close]. *)

val respond_stream :
  ?status:int -> ?content_type:string -> ((string -> unit) -> unit) -> response
(** Streaming response: the callback receives a [push] closure and may
    call it any number of times; each pushed string is flushed as an
    HTTP/1.1 chunk (coalesced into ~8 KiB writes).  The terminal
    zero-chunk is written when the callback returns.  If the client
    disconnects mid-stream the next [push] raises — the connection is
    abandoned, the daemon keeps serving. *)

val status_text : int -> string
(** ["200 OK"], ["404 Not Found"], … (["500 Internal Server Error"] for
    unknown codes). *)

val response_status : response -> int
val response_body : response -> string option
(** The fixed body, or [None] for a streaming response — test hooks, so
    conformance suites can assert on a router's answers without a
    socket. *)

val start_router :
  ?port:int ->
  ?max_body:int ->
  (request -> response) ->
  (t, string) result
(** Bind loopback [port] (default [0]: ephemeral, see {!port}), spawn the
    serving domain, dispatch every well-formed request to the handler.
    The listener answers protocol-level failures itself with structured
    JSON errors: unparsable request framing is a 400, a body larger than
    [max_body] (default 1 MiB) is a 413, a method outside
    GET/POST/DELETE/HEAD/PUT is a 405.  A handler exception is a 500 —
    the daemon survives.  [SIGPIPE] is ignored process-wide so a client
    hanging up mid-response surfaces as a write error, not a kill. *)

(** {1 Legacy observability mode} *)

val start :
  ?port:int ->
  metrics:(unit -> string) ->
  progress:(unit -> string) ->
  unit ->
  (t, string) result
(** The read-only surface: GET [/metrics] and [/progress] serve the
    closures' output, [/healthz] answers ["ok"]; anything else is a 404.
    Implemented on {!start_router}. *)

(** {1 Lifecycle} *)

val port : t -> int
(** The actual bound port (useful with [~port:0]). *)

val stopped : t -> bool
(** The stop flag: set by [/quit] or {!stop}.  Daemons poll this to know
    when to begin graceful shutdown. *)

val stop : t -> unit
(** Stop the accept loop (within one 200 ms poll interval), join the
    serving domain, close the socket.  Idempotent in effect. *)
