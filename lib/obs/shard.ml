(* Per-domain metric shards: the contention-free hot path in front of
   Metrics.

   A sharded counter owns one cell per domain that touched it
   (Domain.DLS), so the per-step increment lands in a cell no other
   domain writes — an uncontended atomic add, never a cache line
   ping-ponged between pool lanes.  Pending cell values are drained into
   the backing Metrics instrument in batches: by the owning lane when a
   pool batch ends (Ewalk_par.Pool calls [flush_local] after every
   drain), by anyone at a quiescent point ([flush_all]), and implicitly
   before every registry read (a pre-read hook installed into Metrics),
   so [Metrics.snapshot] / [Metrics.instruments] stay exact.

   Exactness argument: a counter cell is an [int Atomic.t]; increments
   use fetch_and_add and drains use [Atomic.exchange cell 0], so every
   increment is counted exactly once — either still pending in its cell
   or already added to the global instrument.  Histogram cells accumulate
   under a per-cell mutex (uncontended: only the owner observes into it)
   and drain by locking the cell, merging into the backing histogram, and
   zeroing — again exactly once.  A kill between flush boundaries loses
   nothing that was already flushed and at most the unflushed tail, which
   is precisely the window the flight recorder's dump documents. *)

type counter = {
  c_target : Metrics.counter;
  c_key : int Atomic.t Domain.DLS.key;
  c_mutex : Mutex.t;
  c_cells : int Atomic.t list ref;
}

type hcell = {
  hc_mutex : Mutex.t;
  hc_counts : int array; (* length = bounds + 1, same layout as Metrics *)
  mutable hc_count : int;
  mutable hc_sum : float;
  mutable hc_min : float;
  mutable hc_max : float;
}

type histogram = {
  h_target : Metrics.histogram;
  h_bounds : float array;
  h_key : hcell Domain.DLS.key;
  h_mutex : Mutex.t;
  h_cells : hcell list ref;
}

type instrument = C of counter | H of histogram

(* Every sharded instrument ever created, so the pool's per-lane flush
   hook and the registry pre-read hook need no plumbing.  Creation is
   memoized per (registry, name): a sweep attaching instruments afresh
   for each of thousands of trials still yields one shard family per
   metric, so this list stays as short as the registry itself. *)
let all_mutex = Mutex.create ()
let all : instrument list ref = ref []
let hook_installed = ref false

(* Registries are compared physically (they are mutable); there is one or
   a handful per process, so an association list suffices. *)
let caches : (Metrics.t * (string, instrument) Hashtbl.t) list ref = ref []

let flush_counter_cell target cell =
  let pending = Atomic.exchange cell 0 in
  if pending <> 0 then Metrics.add target pending

let flush_hcell target cell =
  Mutex.lock cell.hc_mutex;
  let count = cell.hc_count in
  if count = 0 then Mutex.unlock cell.hc_mutex
  else begin
    let counts = Array.copy cell.hc_counts in
    let sum = cell.hc_sum and min = cell.hc_min and max = cell.hc_max in
    Array.fill cell.hc_counts 0 (Array.length cell.hc_counts) 0;
    cell.hc_count <- 0;
    cell.hc_sum <- 0.0;
    cell.hc_min <- Float.infinity;
    cell.hc_max <- Float.neg_infinity;
    Mutex.unlock cell.hc_mutex;
    Metrics.hist_merge target ~bucket_counts:counts ~count ~sum ~min ~max
  end

let flush_instrument = function
  | C c ->
      Mutex.lock c.c_mutex;
      let cells = !(c.c_cells) in
      Mutex.unlock c.c_mutex;
      List.iter (flush_counter_cell c.c_target) cells
  | H h ->
      Mutex.lock h.h_mutex;
      let cells = !(h.h_cells) in
      Mutex.unlock h.h_mutex;
      List.iter (flush_hcell h.h_target) cells

let flush_all () =
  Mutex.lock all_mutex;
  let instruments = !all in
  Mutex.unlock all_mutex;
  List.iter flush_instrument instruments

(* The calling lane's publish point (Ewalk_par.Pool calls this after every
   batch drain).  Cell lists are reachable from any domain and drains are
   exact from anywhere, so the simplest correct implementation is a full
   flush — the name records the intent (publish this lane's pending values
   at a quiescent point), not a restriction. *)
let flush_local () = flush_all ()

(* Find-or-create under the cache: [make] runs unlocked (it takes the
   registry mutex); a racing duplicate loses the insert and is dropped
   before anyone increments it, so exactness is unaffected. *)
let intern metrics key make =
  Mutex.lock all_mutex;
  let tbl =
    match List.find_opt (fun (m, _) -> m == metrics) !caches with
    | Some (_, t) -> t
    | None ->
        let t = Hashtbl.create 16 in
        caches := (metrics, t) :: !caches;
        t
  in
  let found = Hashtbl.find_opt tbl key in
  Mutex.unlock all_mutex;
  match found with
  | Some i -> i
  | None ->
      let fresh = make () in
      Mutex.lock all_mutex;
      let final, need_hook =
        match Hashtbl.find_opt tbl key with
        | Some i -> (i, false)
        | None ->
            Hashtbl.add tbl key fresh;
            all := fresh :: !all;
            let need = not !hook_installed in
            if need then hook_installed := true;
            (fresh, need)
      in
      Mutex.unlock all_mutex;
      if need_hook then Metrics.set_pre_read_hook flush_all;
      final

let counter metrics name =
  let make () =
    let c_target = Metrics.counter metrics name in
    let c_mutex = Mutex.create () in
    let c_cells = ref [] in
    let c_key =
      Domain.DLS.new_key (fun () ->
          let cell = Atomic.make 0 in
          Mutex.lock c_mutex;
          c_cells := cell :: !c_cells;
          Mutex.unlock c_mutex;
          cell)
    in
    C { c_target; c_key; c_mutex; c_cells }
  in
  match intern metrics ("c:" ^ name) make with
  | C c -> c
  | H _ -> assert false

let incr c = ignore (Atomic.fetch_and_add (Domain.DLS.get c.c_key) 1)

let add c k =
  if k <> 0 then ignore (Atomic.fetch_and_add (Domain.DLS.get c.c_key) k)

let histogram ?buckets metrics name =
  let make () =
    let h_target = Metrics.histogram ?buckets metrics name in
    let h_bounds = Metrics.hist_bounds h_target in
    let h_mutex = Mutex.create () in
    let h_cells = ref [] in
    let h_key =
      Domain.DLS.new_key (fun () ->
          let cell =
            {
              hc_mutex = Mutex.create ();
              hc_counts = Array.make (Array.length h_bounds + 1) 0;
              hc_count = 0;
              hc_sum = 0.0;
              hc_min = Float.infinity;
              hc_max = Float.neg_infinity;
            }
          in
          Mutex.lock h_mutex;
          h_cells := cell :: !h_cells;
          Mutex.unlock h_mutex;
          cell)
    in
    H { h_target; h_bounds; h_key; h_mutex; h_cells }
  in
  match intern metrics ("h:" ^ name) make with
  | H h -> h
  | C _ -> assert false

let observe h x =
  let cell = Domain.DLS.get h.h_key in
  let nb = Array.length h.h_bounds in
  let i = ref 0 in
  while !i < nb && x > h.h_bounds.(!i) do
    Stdlib.incr i
  done;
  Mutex.lock cell.hc_mutex;
  cell.hc_counts.(!i) <- cell.hc_counts.(!i) + 1;
  cell.hc_count <- cell.hc_count + 1;
  cell.hc_sum <- cell.hc_sum +. x;
  if x < cell.hc_min then cell.hc_min <- x;
  if x > cell.hc_max then cell.hc_max <- x;
  Mutex.unlock cell.hc_mutex

let pending c =
  Mutex.lock c.c_mutex;
  let cells = !(c.c_cells) in
  Mutex.unlock c.c_mutex;
  List.fold_left (fun acc cell -> acc + Atomic.get cell) 0 cells
