(** Per-domain shards in front of {!Metrics} — the contention-free hot
    path for instruments bumped from several pool lanes at once.

    A sharded counter/histogram keeps one cell per domain
    ([Domain.DLS]), so the per-step update never touches a cache line
    another domain writes.  Pending cell values reach the backing
    {!Metrics} instrument in batches:

    - the owning lane publishes after every pool batch
      ([Ewalk_par.Pool] calls {!flush_local});
    - any domain may publish everything at a quiescent point
      ({!flush_all});
    - every {!Metrics.instruments} / {!Metrics.snapshot} read flushes
      first (a pre-read hook installed on first shard creation), so
      registry reads stay exact without knowing about shards.

    Exactness: counter cells drain with [Atomic.exchange cell 0], so each
    increment is counted exactly once — still pending, or already in the
    global instrument; never both, never lost.  Histogram cells drain
    under the cell lock into {!Metrics.hist_merge}. *)

type counter
type histogram

val counter : Metrics.t -> string -> counter
(** [counter t name] registers (or retrieves) the backing
    [Metrics.counter t name] and wraps it in per-domain shards.
    Memoized per (registry, name): repeated calls — one per trial of a
    sweep, say — return the same shard family. *)

val histogram : ?buckets:float array -> Metrics.t -> string -> histogram
(** Sharded wrapper over [Metrics.histogram]; same bucket semantics. *)

val incr : counter -> unit
(** Uncontended: one [fetch_and_add] on this domain's own cell. *)

val add : counter -> int -> unit
(** [add c 0] is a no-op (no cell touch). *)

val observe : histogram -> float -> unit

val flush_local : unit -> unit
(** Publish pending shard values into the backing instruments — the
    per-lane batch-boundary hook.  Exact and safe from any domain. *)

val flush_all : unit -> unit
(** Publish every shard of every sharded instrument in the process. *)

val pending : counter -> int
(** Sum of not-yet-flushed cell values (test visibility; racy under
    concurrent increments, exact at quiescence). *)
