(* The steps/second sampler: a small ring of (cumulative steps,
   monotonic ns) pairs fed from the observation fast path's drain (once
   every ~4096 steps per trial, never per step), yielding a windowed
   recent rate — what /progress serves and what the `eproc runs` views
   summarise — plus an optional JSONL spill to runs/<id>/throughput.jsonl.

   The state is process-global under one mutex: samples arrive at drain
   cadence from whichever lane drains, which is rare enough (tens of Hz
   at most, thanks to the min-gap throttle) that contention is
   unmeasurable.  The rate math lives in pure helpers over (step, ns)
   pair lists so the windowing logic is unit-testable without a clock. *)

let capacity = 4096

(* Keep at most one retained sample per this many ns, so a multi-minute
   run still spans the whole ring and the JSONL spill stays small. *)
let default_min_gap_ns = 10_000_000 (* 10 ms *)

type state = {
  mutable total : int; (* cumulative steps fed via [add] *)
  samples : (int * int) array; (* (total, mono_ns), ring *)
  mutable next : int;
  mutable seen : int;
  mutable last_sample_ns : int;
  mutable out : out_channel option;
  mutable out_path : string option;
}

let mutex = Mutex.create ()

let st =
  {
    total = 0;
    samples = Array.make capacity (0, 0);
    next = 0;
    seen = 0;
    last_sample_ns = min_int;
    out = None;
    out_path = None;
  }

let reset () =
  Mutex.lock mutex;
  st.total <- 0;
  st.next <- 0;
  st.seen <- 0;
  st.last_sample_ns <- min_int;
  (match st.out with Some oc -> close_out_noerr oc | None -> ());
  st.out <- None;
  st.out_path <- None;
  Mutex.unlock mutex

let set_output path =
  Mutex.lock mutex;
  (match st.out with Some oc -> close_out_noerr oc | None -> ());
  st.out_path <- Some path;
  (* Opened lazily at the first sample so arming the sampler in a run
     that never steps leaves no empty file behind. *)
  st.out <- None;
  Mutex.unlock mutex

let spill_locked total now =
  match st.out_path with
  | None -> ()
  | Some path -> (
      let oc =
        match st.out with
        | Some oc -> Some oc
        | None -> (
            match open_out_gen [ Open_append; Open_creat ] 0o644 path with
            | oc ->
                st.out <- Some oc;
                Some oc
            | exception Sys_error _ ->
                st.out_path <- None;
                None)
      in
      match oc with
      | None -> ()
      | Some oc -> (
          try
            output_string oc
              (Printf.sprintf "{\"step\":%d,\"mono_ns\":%d}\n" total now);
            flush oc
          with Sys_error _ -> ()))

let push_locked now =
  st.samples.(st.next) <- (st.total, now);
  st.next <- (st.next + 1) mod capacity;
  st.seen <- st.seen + 1;
  st.last_sample_ns <- now;
  spill_locked st.total now

let add k =
  if k > 0 then begin
    Mutex.lock mutex;
    st.total <- st.total + k;
    let now = Clock.now_ns () in
    (* The sentinel compare (not a subtraction) avoids overflow on the
       first sample: [now - min_int] wraps negative. *)
    if
      st.last_sample_ns = min_int
      || now - st.last_sample_ns >= default_min_gap_ns
    then push_locked now;
    Mutex.unlock mutex
  end

let samples () =
  Mutex.lock mutex;
  let len = min st.seen capacity in
  let first = if st.seen <= capacity then 0 else st.next in
  let l = List.init len (fun i -> st.samples.((first + i) mod capacity)) in
  Mutex.unlock mutex;
  l

let total_steps () =
  Mutex.lock mutex;
  let t = st.total in
  Mutex.unlock mutex;
  t

(* --- pure rate math ------------------------------------------------ *)

let rate_between (s0, t0) (s1, t1) =
  if t1 > t0 then Some (float_of_int (s1 - s0) /. (float_of_int (t1 - t0) *. 1e-9))
  else None

(* The windowed rate over [pairs] (chronological): steps between the
   oldest retained sample inside the window and the newest sample,
   divided by that span.  None until two samples span a positive
   interval. *)
let windowed_rate_of_pairs ~now_ns ~window_ns pairs =
  match List.rev pairs with
  | [] | [ _ ] -> None
  | newest :: older ->
      let cutoff = now_ns - window_ns in
      (* Walk back to the oldest sample still inside the window. *)
      let rec oldest_in best = function
        | [] -> best
        | (s, t) :: rest -> if t >= cutoff then oldest_in (s, t) rest else best
      in
      let anchor = oldest_in newest older in
      if anchor == newest then
        (* Only the newest sample is inside the window: fall back to the
           most recent adjacent pair so a stalled poll still reads the
           last known rate rather than nothing. *)
        match older with old :: _ -> rate_between old newest | [] -> None
      else rate_between anchor newest

let lifetime_rate_of_pairs pairs =
  match pairs with
  | [] | [ _ ] -> None
  | first :: rest -> rate_between first (List.nth rest (List.length rest - 1))

(* Instantaneous rates of adjacent sample pairs — what `eproc runs`
   summarises with median/MAD. *)
let rates_of_pairs pairs =
  let rec go acc = function
    | a :: (b :: _ as rest) -> (
        match rate_between a b with
        | Some r -> go (r :: acc) rest
        | None -> go acc rest)
    | _ -> List.rev acc
  in
  go [] pairs

let default_window_ns = 5_000_000_000 (* 5 s *)

let windowed_rate ?(window_ns = default_window_ns) () =
  windowed_rate_of_pairs ~now_ns:(Clock.now_ns ()) ~window_ns (samples ())

let lifetime_rate () = lifetime_rate_of_pairs (samples ())

let summary_fields () =
  let pairs = samples () in
  let opt = function None -> Json.Null | Some v -> Json.Float v in
  [
    ("steps_total", Json.Int (total_steps ()));
    ("throughput_samples", Json.Int (List.length pairs));
    ( "steps_per_second_windowed",
      opt
        (windowed_rate_of_pairs ~now_ns:(Clock.now_ns ())
           ~window_ns:default_window_ns pairs) );
    ("steps_per_second_lifetime", opt (lifetime_rate_of_pairs pairs));
  ]
