(** Low-overhead steps/second sampling.

    A process-global ring of (cumulative steps, monotonic ns) pairs fed
    by the observation fast path's batch drain — {!add} is called once
    every ~4096 steps per trial, never per step, and retains at most one
    sample per 10 ms — yielding a {e windowed} recent rate (what
    [/progress] serves) alongside the lifetime average, an optional
    JSONL spill ([runs/<id>/throughput.jsonl], one
    [{"step":..,"mono_ns":..}] object per line) and a summary for the
    run's [meta.json].

    The windowing math is exposed as pure helpers over pair lists
    ({!windowed_rate_of_pairs} and friends) so it is testable without a
    clock, and so [eproc runs] can reuse it over series read back from
    disk. *)

val add : int -> unit
(** Feed a step-count delta (from a drain); may retain a sample. *)

val reset : unit -> unit
(** Drop all samples and close any output — test / bench isolation. *)

val set_output : string -> unit
(** Spill every retained sample to this JSONL path (appended, opened at
    the first sample). *)

val samples : unit -> (int * int) list
(** Retained (cumulative steps, mono ns) pairs, oldest first. *)

val total_steps : unit -> int

val windowed_rate : ?window_ns:int -> unit -> float option
(** Steps/second over the trailing window (default 5 s): newest sample
    vs the oldest sample still inside the window, falling back to the
    most recent adjacent pair when the walk has paused.  [None] until
    two samples exist. *)

val lifetime_rate : unit -> float option
(** Steps/second from the first retained sample to the last. *)

val summary_fields : unit -> (string * Json.t) list
(** [steps_total], sample count, windowed and lifetime rates — the
    fields {!Runlog.add_meta_fields} persists into [meta.json]. *)

(** {2 Pure helpers (also used by [eproc runs] over on-disk series)} *)

val rate_between : int * int -> int * int -> float option
val windowed_rate_of_pairs :
  now_ns:int -> window_ns:int -> (int * int) list -> float option

val lifetime_rate_of_pairs : (int * int) list -> float option

val rates_of_pairs : (int * int) list -> float list
(** Instantaneous steps/second of each adjacent sample pair. *)

val default_window_ns : int
