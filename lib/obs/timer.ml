let now () = Unix.gettimeofday ()

type span = {
  span_name : string;
  started : float;
  mutable finished : float option;
}

let start name = { span_name = name; started = now (); finished = None }

let stop s =
  (match s.finished with None -> s.finished <- Some (now ()) | Some _ -> ());
  match s.finished with
  | Some t -> t -. s.started
  | None -> assert false

let elapsed s =
  match s.finished with
  | Some t -> t -. s.started
  | None -> now () -. s.started

let name s = s.span_name

let with_span name f =
  let s = start name in
  Fun.protect
    ~finally:(fun () -> ignore (stop s))
    (fun () ->
      let x = f () in
      (x, s))

let span_to_json s =
  Json.Obj
    [ ("name", Json.String s.span_name); ("seconds", Json.Float (elapsed s)) ]
