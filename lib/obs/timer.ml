(* Epoch time is kept ONLY for timestamps (ledger records, log lines);
   every duration below is measured on the monotonic clock so a span can
   never go backwards when NTP adjusts the wall clock mid-run. *)
let now () = Unix.gettimeofday ()

type span = {
  span_name : string;
  started_ns : int;
  mutable finished_ns : int option;
}

let start name =
  { span_name = name; started_ns = Clock.now_ns (); finished_ns = None }

let stop s =
  (match s.finished_ns with
  | None -> s.finished_ns <- Some (Clock.now_ns ())
  | Some _ -> ());
  match s.finished_ns with
  | Some t -> Clock.ns_to_s (max 0 (t - s.started_ns))
  | None -> assert false

let elapsed s =
  match s.finished_ns with
  | Some t -> Clock.ns_to_s (max 0 (t - s.started_ns))
  | None -> Clock.elapsed_s s.started_ns

let name s = s.span_name

let with_span name f =
  let s = start name in
  Fun.protect
    ~finally:(fun () -> ignore (stop s))
    (fun () ->
      let x = f () in
      (x, s))

let span_to_json s =
  Json.Obj
    [ ("name", Json.String s.span_name); ("seconds", Json.Float (elapsed s)) ]
