(** Wall-clock spans for run telemetry.

    A {!span} measures elapsed time between {!start} and {!stop} on the
    monotonic clock ({!Clock}), so a duration can never go negative under
    NTP adjustment; finished spans can be serialised into the run-telemetry
    JSON that [eproc experiment --metrics] and the bench harness emit.
    For nested spans with self/total attribution use {!Prof}. *)

val now : unit -> float
(** Seconds since the epoch ([Unix.gettimeofday]) — for {e timestamps}
    only (ledger records, log lines), never for durations. *)

type span

val start : string -> span
(** Begin a named span. *)

val stop : span -> float
(** End the span (first call wins) and return its duration in seconds. *)

val elapsed : span -> float
(** Duration so far (final duration once stopped). *)

val name : span -> string

val with_span : string -> (unit -> 'a) -> 'a * span
(** Run the thunk inside a span; the span is stopped even on exceptions
    (in which case the exception is re-raised). *)

val span_to_json : span -> Json.t
(** [{"name":..,"seconds":..}]. *)
