type phase = Blue | Red
type milestone = Vertices | Edges

type event =
  | Run_start of { name : string; n : int; m : int; start : int }
  | Run_info of { run_id : string; parent_run_id : string option }
  | Step of { step : int; vertex : int; edge : int; blue : bool }
  | Phase of { step : int; kind : phase; vertex : int }
  | Milestone of {
      step : int;
      kind : milestone;
      percent : int;
      count : int;
      total : int;
    }
  | Checkpoint of { step : int }
  | Resume of { step : int }
  | Run_end of { steps : int; covered : bool }

let phase_name = function Blue -> "blue" | Red -> "red"
let milestone_name = function Vertices -> "vertices" | Edges -> "edges"

let event_to_json = function
  | Run_start { name; n; m; start } ->
      Json.Obj
        [
          ("type", Json.String "run_start");
          ("process", Json.String name);
          ("n", Json.Int n);
          ("m", Json.Int m);
          ("start", Json.Int start);
        ]
  | Run_info { run_id; parent_run_id } ->
      Json.Obj
        [
          ("type", Json.String "run_info");
          ("run_id", Json.String run_id);
          ( "parent_run_id",
            match parent_run_id with
            | None -> Json.Null
            | Some p -> Json.String p );
        ]
  | Step { step; vertex; edge; blue } ->
      Json.Obj
        [
          ("type", Json.String "step");
          ("step", Json.Int step);
          ("vertex", Json.Int vertex);
          ("edge", Json.Int edge);
          ("blue", Json.Bool blue);
        ]
  | Phase { step; kind; vertex } ->
      Json.Obj
        [
          ("type", Json.String "phase");
          ("step", Json.Int step);
          ("kind", Json.String (phase_name kind));
          ("vertex", Json.Int vertex);
        ]
  | Milestone { step; kind; percent; count; total } ->
      Json.Obj
        [
          ("type", Json.String "milestone");
          ("step", Json.Int step);
          ("kind", Json.String (milestone_name kind));
          ("percent", Json.Int percent);
          ("count", Json.Int count);
          ("total", Json.Int total);
        ]
  | Checkpoint { step } ->
      Json.Obj [ ("type", Json.String "checkpoint"); ("step", Json.Int step) ]
  | Resume { step } ->
      Json.Obj [ ("type", Json.String "resume"); ("step", Json.Int step) ]
  | Run_end { steps; covered } ->
      Json.Obj
        [
          ("type", Json.String "run_end");
          ("steps", Json.Int steps);
          ("covered", Json.Bool covered);
        ]

let event_to_string ev = Json.to_string (event_to_json ev)

let event_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_string_opt in
  let int name = Option.bind (Json.member name j) Json.to_int_opt in
  let bool name =
    match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None
  in
  let missing ty name =
    Error (Printf.sprintf "%s event: missing or ill-typed %S" ty name)
  in
  match str "type" with
  | None -> Error "event has no \"type\" field"
  | Some "run_start" -> (
      match (str "process", int "n", int "m", int "start") with
      | Some name, Some n, Some m, Some start ->
          Ok (Run_start { name; n; m; start })
      | None, _, _, _ -> missing "run_start" "process"
      | _, None, _, _ -> missing "run_start" "n"
      | _, _, None, _ -> missing "run_start" "m"
      | _, _, _, None -> missing "run_start" "start")
  | Some "run_info" -> (
      match str "run_id" with
      | Some run_id ->
          let parent_run_id =
            match Json.member "parent_run_id" j with
            | Some (Json.String p) -> Some p
            | _ -> None
          in
          Ok (Run_info { run_id; parent_run_id })
      | None -> missing "run_info" "run_id")
  | Some "step" -> (
      match (int "step", int "vertex", int "edge", bool "blue") with
      | Some step, Some vertex, Some edge, Some blue ->
          Ok (Step { step; vertex; edge; blue })
      | None, _, _, _ -> missing "step" "step"
      | _, None, _, _ -> missing "step" "vertex"
      | _, _, None, _ -> missing "step" "edge"
      | _, _, _, None -> missing "step" "blue")
  | Some "phase" -> (
      match (int "step", str "kind", int "vertex") with
      | Some step, Some kind_s, Some vertex -> (
          match kind_s with
          | "blue" -> Ok (Phase { step; kind = Blue; vertex })
          | "red" -> Ok (Phase { step; kind = Red; vertex })
          | other -> Error (Printf.sprintf "phase event: unknown kind %S" other))
      | None, _, _ -> missing "phase" "step"
      | _, None, _ -> missing "phase" "kind"
      | _, _, None -> missing "phase" "vertex")
  | Some "milestone" -> (
      match
        (int "step", str "kind", int "percent", int "count", int "total")
      with
      | Some step, Some kind_s, Some percent, Some count, Some total -> (
          match kind_s with
          | "vertices" ->
              Ok (Milestone { step; kind = Vertices; percent; count; total })
          | "edges" ->
              Ok (Milestone { step; kind = Edges; percent; count; total })
          | other ->
              Error (Printf.sprintf "milestone event: unknown kind %S" other))
      | None, _, _, _, _ -> missing "milestone" "step"
      | _, None, _, _, _ -> missing "milestone" "kind"
      | _, _, None, _, _ -> missing "milestone" "percent"
      | _, _, _, None, _ -> missing "milestone" "count"
      | _, _, _, _, None -> missing "milestone" "total")
  | Some "checkpoint" -> (
      match int "step" with
      | Some step -> Ok (Checkpoint { step })
      | None -> missing "checkpoint" "step")
  | Some "resume" -> (
      match int "step" with
      | Some step -> Ok (Resume { step })
      | None -> missing "resume" "step")
  | Some "run_end" -> (
      match (int "steps", bool "covered") with
      | Some steps, Some covered -> Ok (Run_end { steps; covered })
      | None, _ -> missing "run_end" "steps"
      | _, None -> missing "run_end" "covered")
  | Some other -> Error (Printf.sprintf "unknown event type %S" other)

let event_of_string s = Result.bind (Json.of_string s) event_of_json

(* Streams are read line by line (files, stdin); a parse failure must
   name the line so `verify-trace` failures point at the offending input
   instead of an anonymous fragment.  Json.of_string errors already
   carry the character offset within the line. *)
let event_of_line ~line s =
  Result.map_error
    (fun e -> Printf.sprintf "line %d: %s" line e)
    (event_of_string s)

type sink = { kind : sink_kind; emit : event -> unit; close_fn : unit -> unit }
and sink_kind = Null | Live

let emit s ev = s.emit ev
let close s = s.close_fn ()
let null = { kind = Null; emit = ignore; close_fn = ignore }
let is_null s = s.kind = Null

let of_fun ?(close = ignore) emit = { kind = Live; emit; close_fn = close }

let jsonl oc =
  of_fun
    ~close:(fun () -> flush oc)
    (fun ev ->
      output_string oc (event_to_string ev);
      output_char oc '\n')

let tee a b =
  if is_null a then b
  else if is_null b then a
  else
    of_fun
      ~close:(fun () ->
        close a;
        close b)
      (fun ev ->
        a.emit ev;
        b.emit ev)

let filter pred s =
  if is_null s then s
  else
    of_fun
      ~close:(fun () -> close s)
      (fun ev -> if pred ev then s.emit ev)

type ring = {
  buf : event array;
  capacity : int;
  mutable next : int; (* insertion index *)
  mutable seen : int;
}

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity <= 0";
  {
    buf = Array.make capacity (Run_end { steps = 0; covered = false });
    capacity;
    next = 0;
    seen = 0;
  }

let ring_sink r =
  of_fun (fun ev ->
      r.buf.(r.next) <- ev;
      r.next <- (r.next + 1) mod r.capacity;
      r.seen <- r.seen + 1)

let ring_length r = min r.seen r.capacity
let ring_seen r = r.seen

let ring_contents r =
  let len = ring_length r in
  let first = if r.seen <= r.capacity then 0 else r.next in
  List.init len (fun i -> r.buf.((first + i) mod r.capacity))
