(** Structured trace events and pluggable sinks.

    A walk process (or the generic {!Ewalk.Observe} wrapper around one)
    pushes {!event}s into a {!sink}.  Three sinks are provided: {!null}
    (drop everything — the default, and the one the hot path is benchmarked
    against), a bounded {!ring} buffer (keep the last [k] events for
    post-mortem inspection), and {!jsonl} (one JSON object per line on an
    output channel — the [eproc trace] format).

    Events carry vertices and edges as plain integers so this library stays
    independent of the graph representation. *)

type phase = Blue | Red

type milestone = Vertices | Edges
(** Which coverage count crossed a milestone percentage. *)

type event =
  | Run_start of { name : string; n : int; m : int; start : int }
      (** Emitted once, before the first step. *)
  | Run_info of { run_id : string; parent_run_id : string option }
      (** Run provenance, emitted in the prologue (right after
          [Run_start]): the invocation's {!Runlog} id, and the parent
          run's id when this leg resumed another run's artifact.  Joins
          the trace to every other artifact stamped with the same id. *)
  | Step of { step : int; vertex : int; edge : int; blue : bool }
      (** One transition: after step [step] the walk sits at [vertex],
          having traversed [edge].  [blue] is true iff the edge was
          previously unvisited ([edge = -1] when the process does not
          report edges, e.g. a lazy walk staying put). *)
  | Phase of { step : int; kind : phase; vertex : int }
      (** A phase of [kind] begins with the transition numbered
          [step + 1], at [vertex]. *)
  | Milestone of {
      step : int;
      kind : milestone;
      percent : int;  (** 25, 50, 75 or 100 *)
      count : int;
      total : int;
    }  (** Coverage first reached [percent]% after transition [step]. *)
  | Checkpoint of { step : int }
      (** A durable snapshot of the full walk state was written after
          transition [step] (see [Ewalk_resume.Snapshot]). *)
  | Resume of { step : int }
      (** Emitted right after [Run_start] when the run continues from a
          restored snapshot: the walk already stands [step] transitions in,
          and per-step events in this trace resume at [step + 1]. *)
  | Run_end of { steps : int; covered : bool }

val event_to_json : event -> Json.t
(** One-object encoding with a ["type"] discriminator field. *)

val event_to_string : event -> string
(** Compact single-line JSON — exactly one JSONL line, sans newline. *)

val event_of_json : Json.t -> (event, string) result
(** Inverse of {!event_to_json}: [event_of_json (event_to_json e) = Ok e]
    for every event.  Extra object fields are ignored; a missing or
    ill-typed field, or an unknown ["type"], is an [Error] naming it.  This
    is what [eproc verify-trace] and the {!Ewalk_check} replay verifier
    parse recorded JSONL streams back through. *)

val event_of_string : string -> (event, string) result
(** One JSONL line (without the newline) to an event:
    [Json.of_string] composed with {!event_of_json}. *)

val event_of_line : line:int -> string -> (event, string) result
(** {!event_of_string} with errors prefixed ["line <n>: "] so failures
    reading a file or stdin name the offending line (the JSON layer's
    character offset within the line is preserved). *)

type sink
(** Where events go.  Sinks are synchronous and not thread-safe. *)

val emit : sink -> event -> unit
val close : sink -> unit
(** Flush and release any underlying resource.  Idempotent. *)

val null : sink
(** Drops every event.  {!is_null} recognises it so instrumentation can
    skip event construction entirely. *)

val is_null : sink -> bool

val of_fun : ?close:(unit -> unit) -> (event -> unit) -> sink

val jsonl : out_channel -> sink
(** One [event_to_string] line per event.  {!close} flushes but does not
    close the channel (the caller owns it — it may be stdout). *)

val tee : sink -> sink -> sink
(** Duplicate every event to both sinks. *)

val filter : (event -> bool) -> sink -> sink
(** Forward only events satisfying the predicate ([close] passes
    through). *)

type ring
(** Bounded in-memory buffer retaining the most recent events. *)

val ring : capacity:int -> ring
(** @raise Invalid_argument if [capacity <= 0]. *)

val ring_sink : ring -> sink
val ring_length : ring -> int
(** Events currently retained (at most [capacity]). *)

val ring_seen : ring -> int
(** Total events ever emitted, including overwritten ones. *)

val ring_contents : ring -> event list
(** Oldest first. *)
