(* A spawn-once domain pool with a chunked work queue.

   Architecture: [create] spawns [jobs - 1] worker domains that block on a
   Condition until tasks appear in the shared queue.  A batch ([map_array])
   never hands one closure per element to the queue; instead it enqueues up
   to [jobs - 1] "helper" tasks that all drain the same atomic chunk cursor,
   and the calling domain drains it too.  This keeps queue traffic at
   O(jobs) per batch regardless of the array size, and means the caller
   makes progress even when every worker is busy with another batch (so
   nested batches cannot deadlock - they just degrade toward sequential). *)

type batch_state = {
  b_mutex : Mutex.t;
  b_done : Condition.t;
  mutable pending : int; (* helper tasks that have not yet finished *)
  mutable failed : (exn * Printexc.raw_backtrace) option; (* first failure *)
}

(* Telemetry cell, one per lane (lane 0 = the calling domain, 1.. = spawned
   workers).  Each cell is written only by its own domain, so updates take
   no locks; readers ([stats]) should run at a quiescent point (after the
   batch returns), which is when the numbers are meaningful anyway. *)
type lane = {
  mutable busy_ns : int; (* executing batch work *)
  mutable wait_ns : int; (* blocked: queue wait (workers), barrier (caller) *)
  mutable chunks : int; (* chunks claimed from batch cursors *)
  mutable tasks_run : int; (* helper tasks (workers) / batches (caller) *)
}

type lane_report = {
  busy_s : float;
  wait_s : float;
  chunks_served : int;
  tasks_served : int;
}

type t = {
  pool_jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  tasks : (int -> unit) Queue.t; (* argument: executing worker's lane *)
  lanes : lane array; (* length pool_jobs *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  let hardware () = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "EWALK_JOBS" with
  | None | Some "" -> hardware ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          Printf.eprintf
            "ewalk: ignoring EWALK_JOBS=%S (want a positive integer)\n%!" s;
          hardware ())

let jobs t = t.pool_jobs

(* Workers exit only once the pool is stopping AND the queue is drained, so
   helper tasks enqueued before [shutdown] always run to completion (their
   batches would otherwise wait on [pending] forever).  [lane_idx] is the
   worker's telemetry cell: time from arriving at the queue to popping a
   task (or learning the pool stopped) counts as queue wait.  Busy time is
   recorded by the task itself (see [map_array]) — it must land BEFORE the
   task signals its batch done, or a caller reading [stats] right after
   the batch could miss it. *)
let rec worker_loop t lane_idx =
  let lane = t.lanes.(lane_idx) in
  let wait_t0 = Ewalk_obs.Clock.now_ns () in
  Mutex.lock t.mutex;
  while Queue.is_empty t.tasks && not t.stopping do
    Condition.wait t.has_work t.mutex
  done;
  if Queue.is_empty t.tasks then begin
    Mutex.unlock t.mutex;
    lane.wait_ns <- lane.wait_ns + Ewalk_obs.Clock.elapsed_ns wait_t0
  end
  else begin
    let task = Queue.pop t.tasks in
    Mutex.unlock t.mutex;
    lane.wait_ns <- lane.wait_ns + Ewalk_obs.Clock.elapsed_ns wait_t0;
    (try task lane_idx with _ -> ());
    worker_loop t lane_idx
  end

let fresh_lane () = { busy_ns = 0; wait_ns = 0; chunks = 0; tasks_run = 0 }

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Pool.create: jobs must be >= 1 (got %d)" jobs);
  let t =
    {
      pool_jobs = jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      tasks = Queue.create ();
      lanes = Array.init jobs (fun _ -> fresh_lane ());
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let submit t task =
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: submit to a shut-down pool"
  end;
  Queue.push task t.tasks;
  Condition.signal t.has_work;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Drain chunks from a shared cursor until the input is exhausted, another
   lane has failed, or this lane fails (recording the first exception).
   [lane] counts the chunks this drain claims. *)
let drain_chunks ~src ~dst ~f ~chunk ~cursor ~stop ~state ~lane =
  let n = Array.length src in
  let continue_ = ref true in
  while !continue_ do
    if Atomic.get stop then continue_ := false
    else begin
      let start = Atomic.fetch_and_add cursor chunk in
      if start >= n then continue_ := false
      else begin
        lane.chunks <- lane.chunks + 1;
        let limit = min n (start + chunk) in
        try
          for i = start to limit - 1 do
            dst.(i) <- Some (f src.(i))
          done
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Atomic.set stop true;
          Mutex.lock state.b_mutex;
          if state.failed = None then state.failed <- Some (e, bt);
          Mutex.unlock state.b_mutex;
          continue_ := false
      end
    end
  done

let map_array ?chunk t f src =
  let n = Array.length src in
  (match chunk with
  | Some c when c < 1 ->
      invalid_arg (Printf.sprintf "Pool.map_array: chunk must be >= 1 (got %d)" c)
  | _ -> ());
  if t.pool_jobs <= 1 || n <= 1 then Array.map f src
  else begin
    let chunk =
      match chunk with
      | Some c -> c
      | None -> max 1 (n / (t.pool_jobs * 4))
    in
    let dst = Array.make n None in
    let cursor = Atomic.make 0 in
    let stop = Atomic.make false in
    let state =
      {
        b_mutex = Mutex.create ();
        b_done = Condition.create ();
        pending = 0;
        failed = None;
      }
    in
    let nchunks = (n + chunk - 1) / chunk in
    let helpers = min (t.pool_jobs - 1) nchunks in
    state.pending <- helpers;
    for _ = 1 to helpers do
      submit t (fun lane_idx ->
          (* Record busy time / task count before the pending decrement: the
             caller may read [stats] as soon as the last decrement lands, and
             the b_mutex release below is what publishes these writes. *)
          let lane = t.lanes.(lane_idx) in
          let busy_t0 = Ewalk_obs.Clock.now_ns () in
          drain_chunks ~src ~dst ~f ~chunk ~cursor ~stop ~state ~lane;
          lane.busy_ns <- lane.busy_ns + Ewalk_obs.Clock.elapsed_ns busy_t0;
          lane.tasks_run <- lane.tasks_run + 1;
          Mutex.lock state.b_mutex;
          state.pending <- state.pending - 1;
          if state.pending = 0 then Condition.broadcast state.b_done;
          Mutex.unlock state.b_mutex)
    done;
    let caller = t.lanes.(0) in
    let busy_t0 = Ewalk_obs.Clock.now_ns () in
    drain_chunks ~src ~dst ~f ~chunk ~cursor ~stop ~state ~lane:caller;
    caller.busy_ns <- caller.busy_ns + Ewalk_obs.Clock.elapsed_ns busy_t0;
    caller.tasks_run <- caller.tasks_run + 1;
    let wait_t0 = Ewalk_obs.Clock.now_ns () in
    Mutex.lock state.b_mutex;
    while state.pending > 0 do
      Condition.wait state.b_done state.b_mutex
    done;
    let failed = state.failed in
    Mutex.unlock state.b_mutex;
    caller.wait_ns <- caller.wait_ns + Ewalk_obs.Clock.elapsed_ns wait_t0;
    match failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some x -> x | None -> assert false (* every index claimed *))
          dst
  end

let run t thunks =
  Array.to_list
    (map_array ~chunk:1 t (fun thunk -> thunk ()) (Array.of_list thunks))

let stats t =
  Array.map
    (fun l ->
      {
        busy_s = Ewalk_obs.Clock.ns_to_s l.busy_ns;
        wait_s = Ewalk_obs.Clock.ns_to_s l.wait_ns;
        chunks_served = l.chunks;
        tasks_served = l.tasks_run;
      })
    t.lanes

let reset_stats t =
  Array.iter
    (fun l ->
      l.busy_ns <- 0;
      l.wait_ns <- 0;
      l.chunks <- 0;
      l.tasks_run <- 0)
    t.lanes

let utilization_line t ~wall_s =
  let reports = stats t in
  let busy_total = Array.fold_left (fun a r -> a +. r.busy_s) 0.0 reports in
  let chunks = Array.fold_left (fun a r -> a + r.chunks_served) 0 reports in
  let util =
    if wall_s > 0.0 then
      100.0 *. busy_total /. (wall_s *. float_of_int t.pool_jobs)
    else 0.0
  in
  let lanes_txt =
    Array.to_list reports
    |> List.map (fun r -> Printf.sprintf "%.2f" r.busy_s)
    |> String.concat ","
  in
  Printf.sprintf
    "pool: jobs=%d wall=%.2fs busy=[%ss] utilization=%.0f%% chunks=%d"
    t.pool_jobs wall_s lanes_txt util chunks
