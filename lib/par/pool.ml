(* A spawn-once domain pool with a chunked work queue.

   Architecture: [create] spawns [jobs - 1] worker domains that block on a
   Condition until tasks appear in the shared queue.  A batch ([map_array])
   never hands one closure per element to the queue; instead it enqueues up
   to [jobs - 1] "helper" tasks that all drain the same atomic chunk cursor,
   and the calling domain drains it too.  This keeps queue traffic at
   O(jobs) per batch regardless of the array size, and means the caller
   makes progress even when every worker is busy with another batch (so
   nested batches cannot deadlock - they just degrade toward sequential). *)

exception
  Task_failed of { index : int; attempts : int; last : exn }

exception
  Task_timeout of { index : int; elapsed_s : float; timeout_s : float }

let () =
  Printexc.register_printer (function
    | Task_failed { index; attempts; last } ->
        Some
          (Printf.sprintf
             "Pool.Task_failed (element %d failed %d attempt%s; last: %s)"
             index attempts
             (if attempts = 1 then "" else "s")
             (Printexc.to_string last))
    | Task_timeout { index; elapsed_s; timeout_s } ->
        Some
          (Printf.sprintf
             "Pool.Task_timeout (element %d took %.3fs, limit %.3fs)" index
             elapsed_s timeout_s)
    | _ -> None)

(* Deterministic failure injection for the fault-tolerance tests: when set,
   the hook runs before every element execution with the executing lane's
   index and may raise to simulate a lane failure.  Installed by
   [Ewalk_resume.Faults] (which this library must not depend on), hence a
   process-global rather than a pool field. *)
let fault_injector : (lane:int -> unit) option Atomic.t = Atomic.make None
let set_fault_injector f = Atomic.set fault_injector f

let inject ~lane =
  match Atomic.get fault_injector with Some f -> f ~lane | None -> ()

type batch_state = {
  b_mutex : Mutex.t;
  b_done : Condition.t;
  mutable pending : int; (* helper tasks that have not yet finished *)
  mutable failed : (exn * Printexc.raw_backtrace) option; (* first failure *)
  mutable retryable : (int * exn) list; (* failed elements, retry mode only *)
}

(* Telemetry cell, one per lane (lane 0 = the calling domain, 1.. = spawned
   workers).  Each cell is written only by its own domain, so updates take
   no locks; readers ([stats]) should run at a quiescent point (after the
   batch returns), which is when the numbers are meaningful anyway. *)
type lane = {
  mutable busy_ns : int; (* executing batch work *)
  mutable wait_ns : int; (* blocked: queue wait (workers), barrier (caller) *)
  mutable chunks : int; (* chunks claimed from batch cursors *)
  mutable tasks_run : int; (* helper tasks (workers) / batches (caller) *)
  mutable failures : int; (* element executions that raised or timed out *)
  mutable retries : int; (* recovery re-executions performed by this lane *)
}

type lane_report = {
  busy_s : float;
  wait_s : float;
  chunks_served : int;
  tasks_served : int;
  tasks_failed : int;
  tasks_retried : int;
}

type t = {
  pool_jobs : int;
  pool_retries : int;
  pool_timeout_s : float option;
  mutex : Mutex.t;
  has_work : Condition.t;
  tasks : (int -> unit) Queue.t; (* argument: executing worker's lane *)
  lanes : lane array; (* length pool_jobs *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  let hardware () = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "EWALK_JOBS" with
  | None | Some "" -> hardware ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          Printf.eprintf
            "ewalk: ignoring EWALK_JOBS=%S (want a positive integer)\n%!" s;
          hardware ())

let jobs t = t.pool_jobs

(* Workers exit only once the pool is stopping AND the queue is drained, so
   helper tasks enqueued before [shutdown] always run to completion (their
   batches would otherwise wait on [pending] forever).  [lane_idx] is the
   worker's telemetry cell: time from arriving at the queue to popping a
   task (or learning the pool stopped) counts as queue wait.  Busy time is
   recorded by the task itself (see [map_array]) — it must land BEFORE the
   task signals its batch done, or a caller reading [stats] right after
   the batch could miss it. *)
let rec worker_loop t lane_idx =
  let lane = t.lanes.(lane_idx) in
  let wait_t0 = Ewalk_obs.Clock.now_ns () in
  Mutex.lock t.mutex;
  while Queue.is_empty t.tasks && not t.stopping do
    Condition.wait t.has_work t.mutex
  done;
  if Queue.is_empty t.tasks then begin
    Mutex.unlock t.mutex;
    lane.wait_ns <- lane.wait_ns + Ewalk_obs.Clock.elapsed_ns wait_t0
  end
  else begin
    let task = Queue.pop t.tasks in
    Mutex.unlock t.mutex;
    lane.wait_ns <- lane.wait_ns + Ewalk_obs.Clock.elapsed_ns wait_t0;
    (try task lane_idx with _ -> ());
    worker_loop t lane_idx
  end

let fresh_lane () =
  { busy_ns = 0; wait_ns = 0; chunks = 0; tasks_run = 0; failures = 0; retries = 0 }

let create ?(retries = 0) ?task_timeout_s ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Pool.create: jobs must be >= 1 (got %d)" jobs);
  if retries < 0 then
    invalid_arg
      (Printf.sprintf "Pool.create: retries must be >= 0 (got %d)" retries);
  (match task_timeout_s with
  | Some s when not (s > 0.0) ->
      invalid_arg "Pool.create: task_timeout_s must be > 0"
  | _ -> ());
  let t =
    {
      pool_jobs = jobs;
      pool_retries = retries;
      pool_timeout_s = task_timeout_s;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      tasks = Queue.create ();
      lanes = Array.init jobs (fun _ -> fresh_lane ());
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let submit t task =
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: submit to a shut-down pool"
  end;
  Queue.push task t.tasks;
  Condition.signal t.has_work;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?retries ?task_timeout_s ?jobs f =
  let t = create ?retries ?task_timeout_s ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One element execution: fault injection first, then the user function,
   then the (post-hoc) timeout check.  The timeout cannot interrupt a
   runaway task — OCaml domains are not preemptible — so an overlong result
   is discarded and reported as [Task_timeout], which the retry machinery
   treats like any other failure. *)
let exec_element ~timeout_s ~lane_idx ~index f x =
  inject ~lane:lane_idx;
  match timeout_s with
  | None -> f x
  | Some limit ->
      let t0 = Ewalk_obs.Clock.now_ns () in
      let r = f x in
      let elapsed_s = Ewalk_obs.Clock.ns_to_s (Ewalk_obs.Clock.elapsed_ns t0) in
      if elapsed_s > limit then
        raise (Task_timeout { index; elapsed_s; timeout_s = limit })
      else r

(* Drain chunks from a shared cursor until the input is exhausted or the
   batch is stopped.  Without retries, the first failing element stops the
   whole batch (recording the first exception); with retries, failed
   elements are collected in [state.retryable] and draining continues.
   [lane] counts the chunks this drain claims and the failures it hit. *)
let drain_chunks ~src ~dst ~f ~timeout_s ~retrying ~chunk ~cursor ~stop ~state
    ~lane ~lane_idx =
  let n = Array.length src in
  let continue_ = ref true in
  while !continue_ do
    if Atomic.get stop then continue_ := false
    else begin
      let start = Atomic.fetch_and_add cursor chunk in
      if start >= n then continue_ := false
      else begin
        lane.chunks <- lane.chunks + 1;
        let limit = min n (start + chunk) in
        let i = ref start in
        while !continue_ && !i < limit do
          (match
             exec_element ~timeout_s ~lane_idx ~index:!i f src.(!i)
           with
          | r -> dst.(!i) <- Some r
          | exception e ->
              lane.failures <- lane.failures + 1;
              if retrying then begin
                Mutex.lock state.b_mutex;
                state.retryable <- (!i, e) :: state.retryable;
                Mutex.unlock state.b_mutex
              end
              else begin
                let bt = Printexc.get_raw_backtrace () in
                Atomic.set stop true;
                Mutex.lock state.b_mutex;
                if state.failed = None then state.failed <- Some (e, bt);
                Mutex.unlock state.b_mutex;
                continue_ := false
              end);
          incr i
        done
      end
    end
  done

(* Sequential execution of one element with the full retry budget.  Used by
   the [jobs = 1] fast path and by the caller-side recovery pass after a
   parallel batch.  [attempts_done] counts executions already charged to
   this element (0 on the fast path, 1 after a parallel-lane failure). *)
let retry_element ~timeout_s ~retries ~attempts_done ~lane ~lane_idx ~index f x
    ~first_exn =
  let rec go attempt last =
    if attempt > retries + 1 then
      raise (Task_failed { index; attempts = retries + 1; last })
    else begin
      lane.retries <- lane.retries + 1;
      match exec_element ~timeout_s ~lane_idx ~index f x with
      | r -> r
      | exception e ->
          lane.failures <- lane.failures + 1;
          go (attempt + 1) e
    end
  in
  match first_exn with
  | Some e -> go (attempts_done + 1) e
  | None -> (
      (* First execution: with no retry budget, preserve the plain-map
         contract and let the original exception escape unchanged. *)
      match exec_element ~timeout_s ~lane_idx ~index f x with
      | r -> r
      | exception e ->
          lane.failures <- lane.failures + 1;
          if retries = 0 then raise e else go 2 e)

let map_array ?chunk ?retries ?task_timeout_s t f src =
  let n = Array.length src in
  (match chunk with
  | Some c when c < 1 ->
      invalid_arg (Printf.sprintf "Pool.map_array: chunk must be >= 1 (got %d)" c)
  | _ -> ());
  let retries =
    match retries with
    | Some r when r < 0 ->
        invalid_arg
          (Printf.sprintf "Pool.map_array: retries must be >= 0 (got %d)" r)
    | Some r -> r
    | None -> t.pool_retries
  in
  let timeout_s =
    match task_timeout_s with Some _ as s -> s | None -> t.pool_timeout_s
  in
  if t.pool_jobs <= 1 || n <= 1 then begin
    let r =
      Array.mapi
        (fun i x ->
          retry_element ~timeout_s ~retries ~attempts_done:0 ~lane:t.lanes.(0)
            ~lane_idx:0 ~index:i f x ~first_exn:None)
        src
    in
    (* Batch boundary: publish any per-domain metric shards the elements
       filled (see Ewalk_obs.Shard), same as the parallel path below. *)
    Ewalk_obs.Shard.flush_local ();
    r
  end
  else begin
    let chunk =
      match chunk with
      | Some c -> c
      | None -> max 1 (n / (t.pool_jobs * 4))
    in
    let retrying = retries > 0 in
    let dst = Array.make n None in
    let cursor = Atomic.make 0 in
    let stop = Atomic.make false in
    let state =
      {
        b_mutex = Mutex.create ();
        b_done = Condition.create ();
        pending = 0;
        failed = None;
        retryable = [];
      }
    in
    let nchunks = (n + chunk - 1) / chunk in
    let helpers = min (t.pool_jobs - 1) nchunks in
    state.pending <- helpers;
    for _ = 1 to helpers do
      submit t (fun lane_idx ->
          (* Record busy time / task count before the pending decrement: the
             caller may read [stats] as soon as the last decrement lands, and
             the b_mutex release below is what publishes these writes. *)
          let lane = t.lanes.(lane_idx) in
          let busy_t0 = Ewalk_obs.Clock.now_ns () in
          drain_chunks ~src ~dst ~f ~timeout_s ~retrying ~chunk ~cursor ~stop
            ~state ~lane ~lane_idx;
          (* Lane batch boundary: publish this lane's pending metric
             shards before the pending decrement makes the batch's
             results observable to the caller. *)
          Ewalk_obs.Shard.flush_local ();
          lane.busy_ns <- lane.busy_ns + Ewalk_obs.Clock.elapsed_ns busy_t0;
          lane.tasks_run <- lane.tasks_run + 1;
          Mutex.lock state.b_mutex;
          state.pending <- state.pending - 1;
          if state.pending = 0 then Condition.broadcast state.b_done;
          Mutex.unlock state.b_mutex)
    done;
    let caller = t.lanes.(0) in
    let busy_t0 = Ewalk_obs.Clock.now_ns () in
    drain_chunks ~src ~dst ~f ~timeout_s ~retrying ~chunk ~cursor ~stop ~state
      ~lane:caller ~lane_idx:0;
    Ewalk_obs.Shard.flush_local ();
    caller.busy_ns <- caller.busy_ns + Ewalk_obs.Clock.elapsed_ns busy_t0;
    caller.tasks_run <- caller.tasks_run + 1;
    let wait_t0 = Ewalk_obs.Clock.now_ns () in
    Mutex.lock state.b_mutex;
    while state.pending > 0 do
      Condition.wait state.b_done state.b_mutex
    done;
    let failed = state.failed in
    let to_retry = state.retryable in
    Mutex.unlock state.b_mutex;
    caller.wait_ns <- caller.wait_ns + Ewalk_obs.Clock.elapsed_ns wait_t0;
    match failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        (* Recovery pass: re-run failed elements in the caller's lane —
           by construction a different lane than the one that failed them,
           except when the caller's own drain hit the failure.  Ascending
           index order keeps the pass deterministic. *)
        List.sort (fun (i, _) (j, _) -> compare i j) to_retry
        |> List.iter (fun (i, first_exn) ->
               dst.(i) <-
                 Some
                   (retry_element ~timeout_s ~retries ~attempts_done:1
                      ~lane:caller ~lane_idx:0 ~index:i f src.(i)
                      ~first_exn:(Some first_exn)));
        Array.map
          (function Some x -> x | None -> assert false (* every index claimed *))
          dst
  end

let run t thunks =
  Array.to_list
    (map_array ~chunk:1 t (fun thunk -> thunk ()) (Array.of_list thunks))

let stats t =
  Array.map
    (fun l ->
      {
        busy_s = Ewalk_obs.Clock.ns_to_s l.busy_ns;
        wait_s = Ewalk_obs.Clock.ns_to_s l.wait_ns;
        chunks_served = l.chunks;
        tasks_served = l.tasks_run;
        tasks_failed = l.failures;
        tasks_retried = l.retries;
      })
    t.lanes

let reset_stats t =
  Array.iter
    (fun l ->
      l.busy_ns <- 0;
      l.wait_ns <- 0;
      l.chunks <- 0;
      l.tasks_run <- 0;
      l.failures <- 0;
      l.retries <- 0)
    t.lanes

let utilization_line t ~wall_s =
  let reports = stats t in
  let busy_total = Array.fold_left (fun a r -> a +. r.busy_s) 0.0 reports in
  let chunks = Array.fold_left (fun a r -> a + r.chunks_served) 0 reports in
  let util =
    if wall_s > 0.0 then
      100.0 *. busy_total /. (wall_s *. float_of_int t.pool_jobs)
    else 0.0
  in
  let lanes_txt =
    Array.to_list reports
    |> List.map (fun r -> Printf.sprintf "%.2f" r.busy_s)
    |> String.concat ","
  in
  let failed = Array.fold_left (fun a r -> a + r.tasks_failed) 0 reports in
  let retried = Array.fold_left (fun a r -> a + r.tasks_retried) 0 reports in
  (* Lane telemetry joins the rest of the run's artifacts by run id. *)
  let run =
    match Ewalk_obs.Runlog.run_id () with
    | Some id -> " run=" ^ id
    | None -> ""
  in
  Printf.sprintf
    "pool: jobs=%d wall=%.2fs busy=[%ss] utilization=%.0f%% chunks=%d%s%s"
    t.pool_jobs wall_s lanes_txt util chunks
    (if failed = 0 && retried = 0 then ""
     else Printf.sprintf " failures=%d retried=%d" failed retried)
    run
