(** A reusable OCaml 5 domain pool for embarrassingly parallel trial sweeps.

    The pool spawns its worker domains once ({!create}) and reuses them for
    every subsequent batch, so per-batch overhead is a few mutex operations
    rather than a domain spawn.  Work is distributed in chunks pulled from a
    shared cursor; the calling domain participates in every batch, so a pool
    with [jobs = k] runs [k] lanes of work on [k - 1] spawned domains.

    Determinism contract: {!map_array} writes result [i] from input [i] —
    results are positional, never completion-ordered.  A caller that gives
    each element its own independent random stream (as
    [Ewalk_expt.Sweep.trial_rngs] does via [Rng.split_n]) therefore gets
    results that are bit-identical to the sequential path regardless of the
    job count or chunk size.

    A pool with [jobs = 1] spawns no domains at all: every batch runs
    sequentially in the caller, making [jobs=1] a guaranteed-equivalent
    fallback (and the reference implementation the determinism tests compare
    against). *)

type t
(** A pool of worker domains plus a shared work queue. *)

exception Task_failed of { index : int; attempts : int; last : exn }
(** Raised by {!map_array} when element [index] still fails after its full
    retry budget ([attempts = retries + 1] executions); [last] is the final
    failure.  Only raised when the retry budget is positive — with
    [retries = 0] the original exception escapes unchanged. *)

exception Task_timeout of { index : int; elapsed_s : float; timeout_s : float }
(** The failure recorded for an element whose execution exceeded the task
    timeout.  Domains are not preemptible, so the timeout is checked after
    the fact: the overlong result is discarded and the element counts as
    failed (and is retried under a positive retry budget). *)

val set_fault_injector : (lane:int -> unit) option -> unit
(** Install (or clear) a process-global hook run before every element
    execution with the executing lane's index; raising from the hook makes
    that execution fail.  Deterministic failure injection for the
    fault-tolerance tests — see [Ewalk_resume.Faults]. *)

val default_jobs : unit -> int
(** Job count used when [create] is given no [jobs]: the value of the
    [EWALK_JOBS] environment variable if set to a positive integer, else
    [max 1 (Domain.recommended_domain_count () - 1)] (one lane is left for
    the calling domain's housekeeping).  A malformed [EWALK_JOBS] is
    reported on [stderr] and ignored. *)

val create : ?retries:int -> ?task_timeout_s:float -> ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (none when
    [jobs <= 1]).  Defaults to {!default_jobs}.  [retries] (default [0])
    and [task_timeout_s] (default: none) set the pool-wide defaults for
    every {!map_array} batch.
    @raise Invalid_argument if [jobs < 1], [retries < 0] or the timeout is
    not positive. *)

val jobs : t -> int
(** The number of parallel lanes (including the calling domain). *)

val map_array :
  ?chunk:int ->
  ?retries:int ->
  ?task_timeout_s:float ->
  t ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map_array pool f a] is [Array.map f a], computed in parallel.  Elements
    are claimed in contiguous chunks of [chunk] (default: a chunk size that
    yields a few chunks per lane, at least 1); results land at their input's
    index.

    Failure handling is governed by the retry budget ([retries], defaulting
    to the pool-wide value; likewise [task_timeout_s]).  With [retries = 0],
    if any application of [f] raises, the first exception (in completion
    order) is re-raised in the caller after the batch quiesces, and the pool
    remains usable.  With [retries > 0], a failing (or timed-out) element
    does not abort the batch: after the other lanes drain, it is re-executed
    in the caller's lane — a different lane than the one that failed it,
    unless the caller's own drain hit the failure — up to [retries] more
    times, with every failure and re-execution surfaced in {!stats}.  An
    element still failing after [retries + 1] executions raises
    {!Task_failed}.  Because [f] is re-applied to the original element,
    retried batches return the same results as undisturbed ones whenever
    [f] is deterministic per element (give each element its own
    pre-split RNG and copy it inside [f], as [Ewalk_expt.Sweep.map_trials]
    does, rather than mutating shared state).

    Safe to call again after an exception and safe to call from code
    already running inside another pool's batch.

    Every lane flushes its pending [Ewalk_obs.Shard] metric cells when its
    share of the batch ends (and the sequential path flushes after the
    map), so a registry snapshot taken after [map_array] returns sees
    every increment the batch performed.
    @raise Invalid_argument if [chunk < 1] or [retries < 0]. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] evaluates the thunks in parallel (chunk size 1) and
    returns their results in input order.  Same exception contract as
    {!map_array}. *)

(** Per-lane telemetry accumulated since pool creation (or the last
    {!reset_stats}).  Lane 0 is the calling domain; lanes 1.. are the
    spawned workers. *)
type lane_report = {
  busy_s : float;  (** seconds spent executing batch work *)
  wait_s : float;
      (** seconds blocked: queue wait for workers, end-of-batch barrier
          for the caller *)
  chunks_served : int;  (** chunks claimed from batch cursors *)
  tasks_served : int;  (** helper tasks (workers) / batches (caller) *)
  tasks_failed : int;
      (** element executions in this lane that raised or timed out *)
  tasks_retried : int;  (** recovery re-executions performed by this lane *)
}

val stats : t -> lane_report array
(** One report per lane, index = lane.  Cells are written without locks by
    their owning domains, so read this at a quiescent point — after the
    batch whose cost you are attributing has returned.  The sequential
    fast path ([jobs = 1], or single-element inputs) records no timing,
    but failures and retries land in lane 0. *)

val reset_stats : t -> unit
(** Zero every lane (quiescent points only, same caveat as {!stats}). *)

val utilization_line : t -> wall_s:float -> string
(** One-line human summary of {!stats} against a wall-clock interval:
    per-lane busy seconds, aggregate utilization percent
    ([sum busy / (jobs * wall)]), and total chunks served — plus
    [run=<id>] when an ambient {!Ewalk_obs.Runlog} run exists, so lane
    telemetry joins the run's other artifacts.  This is the line the
    bench and CLI print after [--jobs > 1] runs so a poor speedup
    arrives with its explanation attached. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  Submitting new batches to a
    shut-down pool with [jobs > 1] raises [Invalid_argument]. *)

val with_pool :
  ?retries:int -> ?task_timeout_s:float -> ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, passes it to [f] and shuts it down
    afterwards (also on exceptions). *)
