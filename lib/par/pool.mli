(** A reusable OCaml 5 domain pool for embarrassingly parallel trial sweeps.

    The pool spawns its worker domains once ({!create}) and reuses them for
    every subsequent batch, so per-batch overhead is a few mutex operations
    rather than a domain spawn.  Work is distributed in chunks pulled from a
    shared cursor; the calling domain participates in every batch, so a pool
    with [jobs = k] runs [k] lanes of work on [k - 1] spawned domains.

    Determinism contract: {!map_array} writes result [i] from input [i] —
    results are positional, never completion-ordered.  A caller that gives
    each element its own independent random stream (as
    [Ewalk_expt.Sweep.trial_rngs] does via [Rng.split_n]) therefore gets
    results that are bit-identical to the sequential path regardless of the
    job count or chunk size.

    A pool with [jobs = 1] spawns no domains at all: every batch runs
    sequentially in the caller, making [jobs=1] a guaranteed-equivalent
    fallback (and the reference implementation the determinism tests compare
    against). *)

type t
(** A pool of worker domains plus a shared work queue. *)

val default_jobs : unit -> int
(** Job count used when [create] is given no [jobs]: the value of the
    [EWALK_JOBS] environment variable if set to a positive integer, else
    [max 1 (Domain.recommended_domain_count () - 1)] (one lane is left for
    the calling domain's housekeeping).  A malformed [EWALK_JOBS] is
    reported on [stderr] and ignored. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (none when
    [jobs <= 1]).  Defaults to {!default_jobs}.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The number of parallel lanes (including the calling domain). *)

val map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f a] is [Array.map f a], computed in parallel.  Elements
    are claimed in contiguous chunks of [chunk] (default: a chunk size that
    yields a few chunks per lane, at least 1); results land at their input's
    index.  If any application of [f] raises, the first exception (in
    completion order) is re-raised in the caller after the batch quiesces,
    and the pool remains usable.  Safe to call again after an exception and
    safe to call from code already running inside another pool's batch.
    @raise Invalid_argument if [chunk < 1]. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] evaluates the thunks in parallel (chunk size 1) and
    returns their results in input order.  Same exception contract as
    {!map_array}. *)

(** Per-lane telemetry accumulated since pool creation (or the last
    {!reset_stats}).  Lane 0 is the calling domain; lanes 1.. are the
    spawned workers. *)
type lane_report = {
  busy_s : float;  (** seconds spent executing batch work *)
  wait_s : float;
      (** seconds blocked: queue wait for workers, end-of-batch barrier
          for the caller *)
  chunks_served : int;  (** chunks claimed from batch cursors *)
  tasks_served : int;  (** helper tasks (workers) / batches (caller) *)
}

val stats : t -> lane_report array
(** One report per lane, index = lane.  Cells are written without locks by
    their owning domains, so read this at a quiescent point — after the
    batch whose cost you are attributing has returned.  The sequential
    fast path ([jobs = 1], or single-element inputs) records nothing. *)

val reset_stats : t -> unit
(** Zero every lane (quiescent points only, same caveat as {!stats}). *)

val utilization_line : t -> wall_s:float -> string
(** One-line human summary of {!stats} against a wall-clock interval:
    per-lane busy seconds, aggregate utilization percent
    ([sum busy / (jobs * wall)]), and total chunks served.  This is the
    line the bench and CLI print after [--jobs > 1] runs so a poor
    speedup arrives with its explanation attached. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  Submitting new batches to a
    shut-down pool with [jobs > 1] raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, passes it to [f] and shuts it down
    afterwards (also on exceptions). *)
