type t = Xoshiro.t

let of_int64 seed = Xoshiro.of_seed seed

let create ?(seed = 0x5EED) () = of_int64 (Int64.of_int seed)

let bits64 = Xoshiro.next

let copy = Xoshiro.copy

let save t =
  let s0, s1, s2, s3 = Xoshiro.state t in
  [| s0; s1; s2; s3 |]

let restore words =
  if Array.length words <> 4 then
    invalid_arg "Rng.restore: expected 4 state words";
  Xoshiro.of_state words.(0) words.(1) words.(2) words.(3)

let split t =
  (* Hash two successive outputs through the SplitMix finaliser so the child
     seed is not a raw state word of the parent stream. *)
  let a = Xoshiro.next t and b = Xoshiro.next t in
  of_int64 (Splitmix.mix (Int64.add a (Int64.mul 0x9E3779B97F4A7C15L b)))

let split_n t k = Array.init k (fun _ -> split t)

let stream t i =
  if i < 0 then invalid_arg "Rng.stream: negative index";
  if i = 0 then copy t
  else begin
    (* SplitMix jump: fold the parent's state words into a 64-bit base,
       then advance the SplitMix Weyl sequence by [i] increments and
       finalise.  Distinct [i] give distinct, decorrelated seeds; the
       parent is never advanced, so stream 0 (the parent's own copy)
       stays bit-identical to the parent. *)
    let s0, s1, s2, s3 = Xoshiro.state t in
    let base =
      List.fold_left
        (fun acc w -> Splitmix.mix (Int64.add acc w))
        0L [ s0; s1; s2; s3 ]
    in
    of_int64
      (Splitmix.mix
         (Int64.add base (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int i))))
  end

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  if bound land (bound - 1) = 0 then
    (* Power of two: take low bits. *)
    Int64.to_int (Int64.logand (bits64 t) (Int64.of_int (bound - 1)))
  else begin
    (* Rejection sampling on the 63-bit non-negative range. *)
    let bound64 = Int64.of_int bound in
    let mask = Int64.max_int in
    let limit = Int64.sub mask (Int64.rem mask bound64) in
    let rec draw () =
      let v = Int64.logand (bits64 t) mask in
      if v >= limit then draw () else Int64.to_int (Int64.rem v bound64)
    in
    draw ()
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits scaled to [0, 1), then to [0, bound). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1.0 < p

let geometric t p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p out of (0, 1]";
  if p = 1. then 0
  else begin
    let u = float t 1.0 in
    let u = if u = 0. then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1. -. p)))
  end

let exponential t lambda =
  if lambda <= 0. then invalid_arg "Rng.exponential: lambda <= 0";
  let u = float t 1.0 in
  let u = if u = 0. then epsilon_float else u in
  -.log u /. lambda

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0. then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t a =
  let b = Array.copy a in
  shuffle_in_place t b;
  b

let permutation t k =
  let a = Array.init k (fun i -> i) in
  shuffle_in_place t a;
  a

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  if 2 * k >= n then begin
    (* Dense case: partial Fisher–Yates over the whole range. *)
    let a = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = int_in t i (n - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end else begin
    (* Sparse case: rejection with a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
