(** Deterministic, splittable random source for all experiments.

    Every stochastic component in this repository (graph generators, walk
    processes, trial harnesses) draws exclusively from this module, never from
    [Stdlib.Random], so that every experiment is reproducible from a single
    integer seed.  {!split} derives statistically independent child
    generators, which the sweep harness uses to give each trial its own
    stream: trial [i] of experiment [e] sees the same randomness regardless
    of which other trials ran before it. *)

type t
(** A mutable pseudo-random generator (xoshiro256++ underneath). *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from [seed] (default [0x5EED]). *)

val of_int64 : int64 -> t
(** [of_int64 seed] builds a generator from a full 64-bit seed. *)

val split : t -> t
(** [split t] returns a fresh generator whose stream is independent of the
    future output of [t].  [t] itself is advanced. *)

val split_n : t -> int -> t array
(** [split_n t k] is [k] independent children of [t]. *)

val stream : t -> int -> t
(** [stream t i] is the [i]-th derived stream of [t], without advancing
    [t]: stream 0 is [copy t] (bit-identical to the parent), and streams
    [i > 0] are seeded by a SplitMix jump over the parent's state words —
    distinct indices give decorrelated streams even when the parent seed
    is reused.  The multi-walker kernel assigns stream [i] to walker [i],
    so walkers can never collide on a PRNG stream.
    @raise Invalid_argument if [i < 0]. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val save : t -> int64 array
(** [save t] is the exact generator state as 4 words, suitable for
    checkpointing: [restore (save t)] produces the same future stream as
    [t] without advancing it. *)

val restore : int64 array -> t
(** [restore words] rebuilds a generator from {!save} output.
    @raise Invalid_argument if [words] is not 4 words or all zero. *)

val bits64 : t -> int64
(** [bits64 t] is 64 uniform pseudo-random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)].  Unbiased (rejection
    sampling).  @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)] with 53-bit resolution. *)

val bool : t -> bool
(** [bool t] is a fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli([p]) sequence; support [{0, 1, ...}].
    @raise Invalid_argument if [p <= 0. || p > 1.]. *)

val exponential : t -> float -> float
(** [exponential t lambda] is Exp([lambda]) distributed.
    @raise Invalid_argument if [lambda <= 0.]. *)

val gaussian : t -> float
(** [gaussian t] is standard normal (Box–Muller, fresh pair per call). *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t a] applies a uniform Fisher–Yates permutation. *)

val shuffle : t -> 'a array -> 'a array
(** [shuffle t a] is a shuffled copy of [a]. *)

val permutation : t -> int -> int array
(** [permutation t k] is a uniform permutation of [0 .. k-1]. *)

val choice : t -> 'a array -> 'a
(** [choice t a] is a uniform element of [a].
    @raise Invalid_argument on an empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] is a uniform [k]-subset of
    [0 .. n-1], in random order.  @raise Invalid_argument if [k > n] or
    [k < 0]. *)
