module Json = Ewalk_obs.Json

let schema = "ewalk-campaign/2"
let schema_v1 = "ewalk-campaign/1"
let manifest_basename = "campaign.json"
let journal_basename = "trials.jsonl"

type t = {
  c_dir : string;
  mutex : Mutex.t;
  table : (string, string) Hashtbl.t; (* key -> hex-armoured Marshal bytes *)
  mutable journal : out_channel option;
  mutable appended : int; (* journal lines written by this process *)
  mutable hits : int;
  mutable misses : int;
  batch_counters : (string, int ref) Hashtbl.t;
}

let dir t = t.c_dir
let completed t = Hashtbl.length t.table
let cached t = t.hits
let executed t = t.misses

(* --- hex armour ---------------------------------------------------- *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  let len = String.length h in
  if len mod 2 <> 0 then None
  else
    try
      Some
        (String.init (len / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))
    with _ -> None

(* --- files --------------------------------------------------------- *)

let manifest_path dir = Filename.concat dir manifest_basename
let journal_path dir = Filename.concat dir journal_basename

let manifest_json fields = Json.Obj (("schema", Json.String schema) :: fields)

(* The caller-supplied campaign identity: every manifest field except the
   schema tag and the run provenance stamps.  Provenance differs between
   the creating run and every resume leg by construction, so it must not
   participate in the resume-mismatch check. *)
let identity_json = function
  | Json.Obj kvs ->
      Json.Obj
        (List.filter
           (fun (k, _) ->
             k <> "schema" && k <> "run_id" && k <> "parent_run_id")
           kvs)
  | j -> j

let provenance_fields () =
  match Ewalk_obs.Runlog.current () with
  | None -> []
  | Some r ->
      [
        ("run_id", Json.String r.Ewalk_obs.Runlog.run_id);
        ( "parent_run_id",
          match r.Ewalk_obs.Runlog.parent_run_id with
          | None -> Json.Null
          | Some p -> Json.String p );
      ]

let write_manifest dir fields =
  let path = manifest_path dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc
       (Json.to_string (manifest_json (fields @ provenance_fields ())));
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_all ic)

(* Journal lines follow the Ledger pattern: whole line in one write, then
   flush, so a crash leaves at most one truncated final line — which the
   loader drops (that trial simply reruns on resume).  Returns the byte
   length of the newline-terminated prefix, so [open_] can truncate the
   torn tail away before appending (appending after it would fuse the new
   line onto the fragment and corrupt both). *)
let load_journal path table =
  if not (Sys.file_exists path) then 0
  else begin
    let raw = read_file path in
    let n = String.length raw in
    let rec lines start =
      if start >= n then start
      else
        match String.index_from_opt raw start '\n' with
        | None -> start (* unterminated trailing line: crash leftover, drop *)
        | Some stop ->
            let line = String.sub raw start (stop - start) in
            (if String.trim line <> "" then
               match Json.of_string line with
               | Error _ -> () (* torn line that still ends in \n: skip *)
               | Ok j -> (
                   match
                     ( Option.bind (Json.member "key" j) Json.to_string_opt,
                       Option.bind (Json.member "data" j) Json.to_string_opt )
                   with
                   | Some key, Some data -> Hashtbl.replace table key data
                   | _ -> ()));
            lines (stop + 1)
    in
    lines 0
  end

let open_ ~dir ~manifest ~resume =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
    else if not (Sys.is_directory dir) then
      failwith (Printf.sprintf "%s exists and is not a directory" dir);
    let mpath = manifest_path dir and jpath = journal_path dir in
    let wanted = Json.to_string (identity_json (manifest_json manifest)) in
    if resume then begin
      if not (Sys.file_exists mpath) then
        failwith
          (Printf.sprintf "no %s in %s: nothing to resume" manifest_basename
             dir);
      let doc =
        match Json.of_string (String.trim (read_file mpath)) with
        | Ok j -> j
        | Error msg ->
            failwith
              (Printf.sprintf "unreadable manifest %s: %s" mpath msg)
      in
      (match Option.bind (Json.member "schema" doc) Json.to_string_opt with
      | Some s when s = schema || s = schema_v1 -> ()
      | Some s ->
          failwith
            (Printf.sprintf
               "manifest schema %S in %s, this reader understands %S" s dir
               schema)
      | None -> failwith (Printf.sprintf "manifest in %s has no schema" dir));
      let have = Json.to_string (identity_json doc) in
      if have <> wanted then
        failwith
          (Printf.sprintf
             "manifest mismatch in %s:\n  on disk:   %s\n  this run:  %s" dir
             have wanted)
    end
    else begin
      if Sys.file_exists mpath then
        failwith
          (Printf.sprintf
             "%s already holds a campaign (found %s); pass --resume to \
              continue it"
             dir manifest_basename);
      if Sys.file_exists jpath && (Unix.stat jpath).Unix.st_size > 0 then
        failwith
          (Printf.sprintf
             "%s already holds a trial journal; pass --resume to continue it"
             dir);
      write_manifest dir manifest
    end;
    let table = Hashtbl.create 64 in
    if resume then begin
      let keep = load_journal jpath table in
      if Sys.file_exists jpath && (Unix.stat jpath).Unix.st_size > keep then
        Unix.truncate jpath keep
    end;
    let journal =
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 jpath
    in
    Ok
      {
        c_dir = dir;
        mutex = Mutex.create ();
        table;
        journal = Some journal;
        appended = 0;
        hits = 0;
        misses = 0;
        batch_counters = Hashtbl.create 8;
      }
  with
  | Failure msg -> Error msg
  | Sys_error msg | Unix.Unix_error (_, _, msg) -> Error msg

let close t =
  Mutex.lock t.mutex;
  (match t.journal with
  | Some oc ->
      t.journal <- None;
      flush oc;
      close_out_noerr oc
  | None -> ());
  Mutex.unlock t.mutex

let next_batch t ~label =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.batch_counters label with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.batch_counters label r;
        r
  in
  let seq = !r in
  incr r;
  Mutex.unlock t.mutex;
  seq

let run t ~key f =
  let hit =
    Mutex.lock t.mutex;
    let v = Hashtbl.find_opt t.table key in
    (match v with Some _ -> t.hits <- t.hits + 1 | None -> ());
    Mutex.unlock t.mutex;
    v
  in
  match hit with
  | Some hex -> (
      match string_of_hex hex with
      | Some bytes -> Marshal.from_string bytes 0
      | None ->
          failwith
            (Printf.sprintf "campaign journal entry %S is not hex" key))
  | None ->
      let v = f () in
      let data = hex_of_string (Marshal.to_string v []) in
      (* Each row is stamped with the leg that executed it, so a resumed
         campaign's journal reads as a provenance chain: rows before the
         kill carry the parent's id, rows after it the resume leg's.
         The loader ignores unknown fields, so v1 readers still load. *)
      let line =
        Json.to_string
          (Json.Obj
             (("key", Json.String key) :: ("data", Json.String data)
             :: (match Ewalk_obs.Runlog.run_id () with
                | Some id -> [ ("run_id", Json.String id) ]
                | None -> [])))
      in
      Mutex.lock t.mutex;
      Hashtbl.replace t.table key data;
      t.misses <- t.misses + 1;
      (match t.journal with
      | Some oc ->
          (* One write + flush: the atomic-append pattern. *)
          output_string oc (line ^ "\n");
          flush oc
      | None -> ());
      t.appended <- t.appended + 1;
      (* The journal line for this trial is durable: this is a checkpoint
         boundary, where an injected kill-trial fault may exit.  It must
         fire while the mutex is still held — after unlock another lane
         can append row k+1 before the kill at boundary k exits, leaving
         a journal one row longer than the fault spec promises. *)
      Faults.trial_completed ~completed:t.appended;
      Mutex.unlock t.mutex;
      v

(* The creating run's provenance, read back from an on-disk manifest: a
   resume leg adopts this as its parent id.  A v1 manifest (no run_id)
   yields a stable legacy id synthesized from the manifest bytes; a
   present but malformed id is rejected. *)
let provenance ~dir =
  try
    let mpath = manifest_path dir in
    if not (Sys.file_exists mpath) then
      Error (Printf.sprintf "no %s in %s" manifest_basename dir)
    else
      match Json.of_string (String.trim (read_file mpath)) with
      | Error msg -> Error (Printf.sprintf "unreadable manifest: %s" msg)
      | Ok j -> (
          match Json.member "run_id" j with
          | Some (Json.String id) when Ewalk_obs.Runlog.validate_id id ->
              let parent_run_id =
                match Json.member "parent_run_id" j with
                | Some (Json.String p) when Ewalk_obs.Runlog.validate_id p ->
                    Some p
                | _ -> None
              in
              Ok { Ewalk_obs.Runlog.run_id = id; parent_run_id }
          | Some _ -> Error "malformed run_id in manifest"
          | None ->
              Ok
                {
                  Ewalk_obs.Runlog.run_id =
                    Ewalk_obs.Runlog.synthesize_legacy (Json.to_string j);
                  parent_run_id = None;
                })
  with Sys_error msg -> Error msg

let describe ~dir =
  try
    let mpath = manifest_path dir and jpath = journal_path dir in
    if not (Sys.file_exists mpath) then
      Error (Printf.sprintf "no %s in %s" manifest_basename dir)
    else
      match Json.of_string (String.trim (read_file mpath)) with
      | Error msg -> Error (Printf.sprintf "unreadable manifest: %s" msg)
      | Ok j ->
          let table = Hashtbl.create 64 in
          ignore (load_journal jpath table : int);
          let tag name =
            match Json.member name j with
            | Some (Json.String s) -> s
            | Some v -> Json.to_string v
            | None -> "?"
          in
          if tag "schema" <> schema && tag "schema" <> schema_v1 then
            Error
              (Printf.sprintf "manifest schema %S, this reader understands %S"
                 (tag "schema") schema)
          else
            let run =
              match provenance ~dir with
              | Ok r -> Printf.sprintf " [run %s]" r.Ewalk_obs.Runlog.run_id
              | Error _ -> ""
            in
            Ok
              (Printf.sprintf
                 "%s: campaign %s (experiment=%s scale=%s seed=%s) — %d \
                  completed trial(s) journaled%s"
                 (tag "schema") dir (tag "experiment") (tag "scale")
                 (tag "seed")
                 (Hashtbl.length table)
                 run)
  with Sys_error msg -> Error msg

let ambient_campaign : t option ref = ref None
let set_ambient c = ambient_campaign := c
let ambient () = !ambient_campaign
