(** Resumable trial campaigns: a per-trial completion journal that lets a
    killed experiment sweep restart and re-run only unfinished trials.

    A campaign owns a checkpoint directory holding two files:

    - [campaign.json] — a manifest [{"schema":"ewalk-campaign/2", ...}]
      identifying the run (experiment id, scale, seed).  A resume whose
      manifest disagrees is refused: mixing trials from different
      experiments or seeds would silently corrupt tables.  The job count is
      deliberately {e not} part of the identity — results are
      jobs-invariant by the pool's determinism contract, so a campaign
      started at [--jobs 4] may resume at [--jobs 1] and vice versa.
      Since v2 the manifest also stamps the creating run's
      {!Ewalk_obs.Runlog} id; provenance fields (and the schema tag — v1
      manifests still resume) are excluded from the identity check.
    - [trials.jsonl] — one line per completed trial,
      [{"key":"<label>#<batch>:<index>","data":"<hex>","run_id":"r..."}]
      (the id of the leg that executed the trial — a resumed journal
      reads as a provenance chain), appended with the
      same single-write-plus-flush pattern as {!Ewalk_obs.Ledger} and read
      back tolerating a truncated final line (the crash case).  [data] is
      the trial's result value, [Marshal]-encoded and hex-armoured —
      [Marshal] round-trips floats exactly, which is what makes resumed
      tables bit-identical.

    {!run} is the memoizing primitive: on a journal hit the stored value is
    returned without executing the trial; on a miss the trial runs, its
    value is journaled (that append is the checkpoint boundary
    {!Faults.trial_completed} counts), and the value is returned.  Trials
    may run concurrently on pool lanes; the journal is mutex-guarded.

    Keys must be stable across runs: {!next_batch} hands out a per-label
    sequence number in call order, which is deterministic because
    experiment code performs the same sweeps in the same order every
    run. *)

val schema : string
(** ["ewalk-campaign/2"] — what new campaigns stamp.  Resume and
    {!describe} also accept ["ewalk-campaign/1"]. *)

val manifest_basename : string
(** ["campaign.json"]. *)

val journal_basename : string
(** ["trials.jsonl"]. *)

type t

val open_ :
  dir:string ->
  manifest:(string * Ewalk_obs.Json.t) list ->
  resume:bool ->
  (t, string) result
(** Open (and create, if needed) the checkpoint directory.

    With [resume = false] the directory must not already hold a campaign
    (a leftover manifest or non-empty journal is refused — pass [--resume]
    to continue it).  With [resume = true] the manifest must exist and its
    caller fields must equal [manifest]; completed trials are loaded from
    the journal. *)

val close : t -> unit
(** Flush and close the journal.  Idempotent. *)

val dir : t -> string

val completed : t -> int
(** Trials currently known complete (journal lines loaded + appended). *)

val cached : t -> int
(** {!run} calls answered from the journal since [open_]. *)

val executed : t -> int
(** {!run} calls that actually ran their trial since [open_]. *)

val next_batch : t -> label:string -> int
(** The next batch sequence number for [label] (0, 1, ... in call order).
    Call once per sweep, from the orchestrating domain. *)

val run : t -> key:string -> (unit -> 'a) -> 'a
(** Memoize one trial under [key].  Unsafe in the [Marshal] sense: the
    caller must use each key at a single result type, which the
    label/batch/index key discipline guarantees.  Thread-safe. *)

val provenance : dir:string -> (Ewalk_obs.Runlog.t, string) result
(** The creating run's id (and parent) from the on-disk manifest — what a
    resume leg adopts as its parent.  v1 manifests yield a synthesized
    legacy id; a present but malformed id is an error. *)

val describe : dir:string -> (string, string) result
(** Human summary of a checkpoint directory (manifest + journal size) for
    [eproc checkpoint-inspect]. *)

(** {2 Ambient campaign}

    The sweep harness ({!Ewalk_expt.Sweep.map_trials}) consults a
    process-global campaign so experiment code needs no signature changes;
    [eproc experiment --checkpoint-dir] sets it for the duration of the
    run. *)

val set_ambient : t option -> unit
val ambient : unit -> t option
