(* Table-driven CRC-32, reflected form of polynomial 0x04C11DB7 (table
   entries use the reversed constant 0xEDB88320).  Matches zlib's crc32()
   so snapshot checksums can be cross-checked with standard tools. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let string s =
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl)
      in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xFFFFFFFFl

let to_hex c = Printf.sprintf "%08lx" (Int32.logand c 0xFFFFFFFFl)

let of_hex s =
  if String.length s <> 8 then None
  else if not (String.for_all (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false) s)
  then None
  else
    (* Parse as int64 first: 8 hex digits can exceed Int32.max_int. *)
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v -> Some (Int64.to_int32 v)
    | None -> None
