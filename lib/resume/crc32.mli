(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), implemented locally so
    snapshot files carry an integrity check without a compression-library
    dependency.  Guards against truncated or bit-flipped checkpoint files —
    it is a corruption detector, not a cryptographic signature. *)

val string : string -> int32
(** CRC-32 of the whole string (initial value [0xFFFFFFFF], final XOR, as
    everywhere else). *)

val to_hex : int32 -> string
(** Lowercase 8-digit hex, e.g. ["cbf43926"]. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)
