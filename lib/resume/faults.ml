type clause = Kill_trial of int | Fail_lane of { lane : int; always : bool }
type t = clause list

let none = []

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected what -> Some (Printf.sprintf "Faults.Injected(%s)" what)
    | _ -> None)

let kill_exit_code = 70
let env_var = "EWALK_FAULT_SPEC"

let clause_to_string = function
  | Kill_trial k -> Printf.sprintf "kill-trial:%d" k
  | Fail_lane { lane; always } ->
      Printf.sprintf "fail-lane:%d:%s" lane (if always then "always" else "once")

let to_string t = String.concat "," (List.map clause_to_string t)

let parse_clause s =
  match String.split_on_char ':' s with
  | [ "kill-trial"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Ok (Kill_trial k)
      | _ -> Error (Printf.sprintf "kill-trial wants a count >= 1, got %S" k))
  | "fail-lane" :: lane :: rest -> (
      match (int_of_string_opt lane, rest) with
      | Some lane, [] when lane >= 0 -> Ok (Fail_lane { lane; always = false })
      | Some lane, [ "once" ] when lane >= 0 ->
          Ok (Fail_lane { lane; always = false })
      | Some lane, [ "always" ] when lane >= 0 ->
          Ok (Fail_lane { lane; always = true })
      | Some _, [ other ] ->
          Error (Printf.sprintf "fail-lane mode %S is not once|always" other)
      | _ -> Error (Printf.sprintf "fail-lane wants a lane >= 0, got %S" lane))
  | _ -> Error (Printf.sprintf "unknown fault clause %S" s)

let parse s =
  let s = String.trim s in
  if s = "" then Ok none
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest -> (
          match parse_clause (String.trim c) with
          | Ok cl -> go (cl :: acc) rest
          | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)

(* Armed state.  [once] clauses need a disarm flag that is safe to trip
   from any pool lane, hence the atomics; the spec itself is installed from
   the main domain before any batch runs. *)
type armed = { clauses : clause list; once_fired : bool Atomic.t array }

let state : armed Atomic.t =
  Atomic.make { clauses = []; once_fired = [||] }

let install clauses =
  let armed =
    { clauses; once_fired = Array.init (List.length clauses) (fun _ -> Atomic.make false) }
  in
  Atomic.set state armed;
  let has_lane_faults =
    List.exists (function Fail_lane _ -> true | _ -> false) clauses
  in
  if has_lane_faults then
    Ewalk_par.Pool.set_fault_injector
      (Some
         (fun ~lane ->
           let a = Atomic.get state in
           List.iteri
             (fun i cl ->
               match cl with
               | Fail_lane { lane = l; always } when l = lane ->
                   if always then
                     raise (Injected (clause_to_string cl))
                   else if
                     Atomic.compare_and_set a.once_fired.(i) false true
                   then raise (Injected (clause_to_string cl))
               | _ -> ())
             a.clauses))
  else Ewalk_par.Pool.set_fault_injector None

let install_from_env () =
  match Sys.getenv_opt env_var with
  | None ->
      install none;
      Ok none
  | Some s -> (
      match parse s with
      | Ok t ->
          install t;
          Ok t
      | Error _ as e -> e)

let trial_completed ~completed =
  let a = Atomic.get state in
  List.iter
    (function
      | Kill_trial k when k = completed ->
          Printf.eprintf
            "ewalk: injected fault kill-trial:%d fired after %d journaled \
             trial(s); exiting %d\n\
             %!"
            k completed kill_exit_code;
          exit kill_exit_code
      | _ -> ())
    a.clauses
