(** Deterministic fault injection for durability tests.

    Failure paths (a worker lane raising, a campaign process dying between
    checkpoints) are hard to hit on demand, so the crash-matrix and retry
    suites inject them via the [EWALK_FAULT_SPEC] environment variable.

    {2 Grammar}

    [spec      ::= clause ("," clause)*]

    [clause    ::= "kill-trial:" K          — exit with code 70 right after
                                              the K-th (1-based) trial-journal
                                              append of this process]

    [           |  "fail-lane:" L ":once"   — the next task executing on pool
                                              lane L raises Injected (then the
                                              clause disarms)]

    [           |  "fail-lane:" L ":always" — every task on lane L raises]

    [           |  "fail-lane:" L           — shorthand for ":once"]

    Examples: [kill-trial:7], [fail-lane:2:once], [kill-trial:3,fail-lane:0].

    [fail-lane] clauses are wired into {!Ewalk_par.Pool.set_fault_injector};
    [kill-trial] fires from {!Campaign} when a computed trial has just been
    journaled — i.e. exactly at a checkpoint boundary, which is what lets
    the crash matrix kill a campaign at every boundary in turn. *)

type clause =
  | Kill_trial of int  (** 1-based count of journal appends *)
  | Fail_lane of { lane : int; always : bool }

type t = clause list

val none : t

exception Injected of string
(** What an armed [fail-lane] clause raises inside the failing task. *)

val kill_exit_code : int
(** 70 ([EX_SOFTWARE]): the exit status of an injected [kill-trial]. *)

val parse : string -> (t, string) result
(** Parse a spec string.  The empty string parses to {!none}. *)

val to_string : t -> string
(** Canonical rendering, [parse]-able back. *)

val env_var : string
(** ["EWALK_FAULT_SPEC"]. *)

val install : t -> unit
(** Arm the clauses process-wide: registers the pool fault injector (or
    clears it for a spec without [fail-lane] clauses) and resets the
    [once] / [kill-trial] firing state. *)

val install_from_env : unit -> (t, string) result
(** [parse] the [EWALK_FAULT_SPEC] variable (unset or empty: {!none}) and
    {!install} the result.  An [Error] installs nothing. *)

val trial_completed : completed:int -> unit
(** Notify the armed spec that this process has journaled its
    [completed]-th trial; an armed [kill-trial:completed] clause prints a
    diagnostic to [stderr] and exits with {!kill_exit_code}. *)
