open Ewalk_graph
module Json = Ewalk_obs.Json
module Kengine = Ewalk_kernel.Engine

let schema = "ewalk-snapshot/2"
let schema_v1 = "ewalk-snapshot/1"

type walk =
  | Eprocess of Ewalk.Eprocess.t
  | Srw of Ewalk.Srw.t
  | Rotor of Ewalk.Rotor.t
  | Kernel of Kengine.t

let kind_name = function
  | Eprocess p -> (Ewalk.Eprocess.process p).Ewalk.Cover.name
  | Srw w -> (Ewalk.Srw.process w).Ewalk.Cover.name
  | Rotor r -> (Ewalk.Rotor.process r).Ewalk.Cover.name
  | Kernel k -> Kengine.name k

let walk_steps = function
  | Eprocess p -> Ewalk.Eprocess.steps p
  | Srw w -> Ewalk.Srw.steps w
  | Rotor r -> Ewalk.Rotor.steps r
  | Kernel k -> Kengine.steps k

let walk_position = function
  | Eprocess p -> Ewalk.Eprocess.position p
  | Srw w -> Ewalk.Srw.position w
  | Rotor r -> Ewalk.Rotor.position r
  | Kernel k -> Kengine.position k

type error = Io of string | Corrupt of string | Mismatch of string

let error_to_string = function
  | Io msg -> "io error: " ^ msg
  | Corrupt msg -> "corrupt snapshot: " ^ msg
  | Mismatch msg -> "snapshot mismatch: " ^ msg

(* ------------------------------------------------------------------ *)
(* Encoding *)

let int_array a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

(* PRNG words are full unsigned 64-bit values; OCaml's [Json.Int] carries
   63-bit ints, so the words travel as hex strings. *)
let rng_words words =
  Json.List
    (Array.to_list
       (Array.map (fun w -> Json.String (Printf.sprintf "0x%Lx" w)) words))

let coverage_json (s : Ewalk.Coverage.state) =
  Json.Obj
    [
      ("vertex_first", int_array s.s_vertex_first);
      ("edge_first", int_array s.s_edge_first);
      ("visits", int_array s.s_visits);
      ("edge_count", int_array s.s_edge_count);
      ("vertices_seen", Json.Int s.s_vertices_seen);
      ("edges_seen", Json.Int s.s_edges_seen);
      ("vertex_cover_step", Json.Int s.s_vertex_cover_step);
      ("edge_cover_step", Json.Int s.s_edge_cover_step);
    ]

let unvisited_json (s : Ewalk.Unvisited.state) =
  Json.Obj
    [
      ("slot_list", int_array s.s_slot_list);
      ("slot_index", int_array s.s_slot_index);
      ("counts", int_array s.s_counts);
    ]

let phase_kind_name = function
  | Ewalk.Eprocess.Blue -> "blue"
  | Ewalk.Eprocess.Red -> "red"

let phase_json (p : Ewalk.Eprocess.phase) =
  Json.Obj
    [
      ("kind", Json.String (phase_kind_name p.kind));
      ("start_step", Json.Int p.start_step);
      ("start_vertex", Json.Int p.start_vertex);
      ("end_step", Json.Int p.end_step);
      ("end_vertex", Json.Int p.end_vertex);
    ]

let graph_fields g =
  [ ("n", Json.Int (Graph.n g)); ("m", Json.Int (Graph.m g)) ]

let payload_of_walk walk =
  match walk with
  | Eprocess p ->
      let ck = Ewalk.Eprocess.checkpoint p in
      Json.Obj
        ([ ("kind", Json.String "eprocess") ]
        @ graph_fields (Ewalk.Eprocess.graph p)
        @ [
            ( "rule",
              Json.String
                (match ck.ck_rule with
                | `Uar -> "uar"
                | `Lowest_slot -> "lowest-slot"
                | `Highest_slot -> "highest-slot") );
            ("pos", Json.Int ck.ck_pos);
            ("steps", Json.Int ck.ck_steps);
            ("blue_steps", Json.Int ck.ck_blue_steps);
            ("red_steps", Json.Int ck.ck_red_steps);
            ("rng", rng_words ck.ck_rng);
            ("coverage", coverage_json ck.ck_coverage);
            ("unvisited", unvisited_json ck.ck_unvisited);
            ("record_phases", Json.Bool ck.ck_record_phases);
            ( "current_phase",
              match ck.ck_current_phase with
              | None -> Json.Null
              | Some (kind, start_step, start_vertex) ->
                  Json.Obj
                    [
                      ("kind", Json.String (phase_kind_name kind));
                      ("start_step", Json.Int start_step);
                      ("start_vertex", Json.Int start_vertex);
                    ] );
            ("phases", Json.List (List.map phase_json ck.ck_phases));
          ])
  | Srw w ->
      let ck = Ewalk.Srw.checkpoint w in
      Json.Obj
        ([
           ( "kind",
             Json.String
               (match ck.ck_kind with `Simple -> "srw" | `Lazy -> "lazy-srw")
           );
         ]
        @ graph_fields (Ewalk.Srw.graph w)
        @ [
            ("pos", Json.Int ck.ck_pos);
            ("steps", Json.Int ck.ck_steps);
            ("rng", rng_words ck.ck_rng);
            ("coverage", coverage_json ck.ck_coverage);
          ])
  | Rotor r ->
      let ck = Ewalk.Rotor.checkpoint r in
      Json.Obj
        ([ ("kind", Json.String "rotor") ]
        @ graph_fields (Ewalk.Rotor.graph r)
        @ [
            ("pos", Json.Int ck.ck_pos);
            ("steps", Json.Int ck.ck_steps);
            ("rotor", int_array ck.ck_rotor);
            ("coverage", coverage_json ck.ck_coverage);
          ])
  | Kernel k when Kengine.mode k = Kengine.Competing ->
      (* Competing engines carry per-walker bit-packed visited sets; the
         bitsets travel as hex strings and the derived visit counters ride
         along for inspectability ([describe] cross-checks them). *)
      let ck = Kengine.checkpoint_competing k in
      let kernel_phase_kind = function
        | Kengine.Blue -> "blue"
        | Kengine.Red -> "red"
      in
      let phase_cell = function
        | None -> Json.Null
        | Some (kind, start_step, start_vertex) ->
            Json.Obj
              [
                ("kind", Json.String (kernel_phase_kind kind));
                ("start_step", Json.Int start_step);
                ("start_vertex", Json.Int start_vertex);
              ]
      in
      let bitsets a =
        Json.List
          (Array.to_list
             (Array.map (fun b -> Json.String (Ewalk.Bitset.to_hex b)) a))
      in
      Json.Obj
        ([ ("kind", Json.String "kernel-competing") ]
        @ graph_fields (Kengine.graph k)
        @ [
            ( "proc",
              Json.String
                (match ck.Kengine.cc_proc with
                | Kengine.E_uar -> "e-uar"
                | Kengine.E_lowest -> "e-lowest"
                | Kengine.E_highest -> "e-highest"
                | Kengine.Srw -> "srw"
                | Kengine.Rotor -> "rotor") );
            ("walkers", Json.Int (Array.length ck.Kengine.cc_pos));
            ("pos", int_array ck.Kengine.cc_pos);
            ("cursor", Json.Int ck.Kengine.cc_cursor);
            ( "steps",
              Json.Int (Array.fold_left ( + ) 0 ck.Kengine.cc_wsteps) );
            ("wsteps", int_array ck.Kengine.cc_wsteps);
            ("wblue", int_array ck.Kengine.cc_wblue);
            ("wred", int_array ck.Kengine.cc_wred);
            ("prng", rng_words ck.Kengine.cc_prng);
            ("visited", bitsets ck.Kengine.cc_visited);
            ("vseen", bitsets ck.Kengine.cc_vseen);
            ("vcount", int_array ck.Kengine.cc_vcount);
            ("ecount", int_array ck.Kengine.cc_ecount);
            ("cover_at", int_array ck.Kengine.cc_cover_at);
            ( "rotor",
              match ck.Kengine.cc_rotor with
              | None -> Json.Null
              | Some r -> int_array r );
            ( "phase",
              Json.List
                (Array.to_list (Array.map phase_cell ck.Kengine.cc_phase)) );
          ])
  | Kernel k ->
      let ck = Kengine.checkpoint k in
      let kernel_phase_kind = function
        | Kengine.Blue -> "blue"
        | Kengine.Red -> "red"
      in
      let phase_cell = function
        | None -> Json.Null
        | Some (kind, start_step, start_vertex) ->
            Json.Obj
              [
                ("kind", Json.String (kernel_phase_kind kind));
                ("start_step", Json.Int start_step);
                ("start_vertex", Json.Int start_vertex);
              ]
      in
      Json.Obj
        ([ ("kind", Json.String "kernel") ]
        @ graph_fields (Kengine.graph k)
        @ [
            ( "proc",
              Json.String
                (match ck.Kengine.ck_proc with
                | Kengine.E_uar -> "e-uar"
                | Kengine.E_lowest -> "e-lowest"
                | Kengine.E_highest -> "e-highest"
                | Kengine.Srw -> "srw"
                | Kengine.Rotor -> "rotor") );
            ("walkers", Json.Int (Array.length ck.Kengine.ck_pos));
            ("pos", int_array ck.Kengine.ck_pos);
            ("cursor", Json.Int ck.Kengine.ck_cursor);
            ("steps", Json.Int ck.Kengine.ck_steps);
            ("wsteps", int_array ck.Kengine.ck_wsteps);
            ("wblue", int_array ck.Kengine.ck_wblue);
            ("wred", int_array ck.Kengine.ck_wred);
            ("prng", rng_words ck.Kengine.ck_prng);
            ("coverage", coverage_json ck.Kengine.ck_coverage);
            ( "unvisited",
              match ck.Kengine.ck_unvisited with
              | None -> Json.Null
              | Some u -> unvisited_json u );
            ( "rotor",
              match ck.Kengine.ck_rotor with
              | None -> Json.Null
              | Some r -> int_array r );
            ( "phase",
              Json.List
                (Array.to_list (Array.map phase_cell ck.Kengine.ck_phase)) );
          ])

(* ------------------------------------------------------------------ *)
(* Decoding *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let get_int name j =
  match Json.to_int_opt (field name j) with
  | Some i -> i
  | None -> fail "field %S is not an integer" name

let get_string name j =
  match Json.to_string_opt (field name j) with
  | Some s -> s
  | None -> fail "field %S is not a string" name

let get_bool name j =
  match field name j with
  | Json.Bool b -> b
  | _ -> fail "field %S is not a boolean" name

let get_int_array name j =
  match field name j with
  | Json.List l ->
      Array.of_list
        (List.map
           (fun v ->
             match Json.to_int_opt v with
             | Some i -> i
             | None -> fail "field %S has a non-integer entry" name)
           l)
  | _ -> fail "field %S is not an array" name

let get_rng_words name j =
  match field name j with
  | Json.List l ->
      Array.of_list
        (List.map
           (fun v ->
             match Json.to_string_opt v with
             | Some s -> (
                 match Int64.of_string_opt s with
                 | Some w -> w
                 | None -> fail "field %S has a malformed word %S" name s)
             | None -> fail "field %S has a non-string entry" name)
           l)
  | _ -> fail "field %S is not an array" name

let coverage_of_json j : Ewalk.Coverage.state =
  {
    s_vertex_first = get_int_array "vertex_first" j;
    s_edge_first = get_int_array "edge_first" j;
    s_visits = get_int_array "visits" j;
    s_edge_count = get_int_array "edge_count" j;
    s_vertices_seen = get_int "vertices_seen" j;
    s_edges_seen = get_int "edges_seen" j;
    s_vertex_cover_step = get_int "vertex_cover_step" j;
    s_edge_cover_step = get_int "edge_cover_step" j;
  }

let unvisited_of_json j : Ewalk.Unvisited.state =
  {
    s_slot_list = get_int_array "slot_list" j;
    s_slot_index = get_int_array "slot_index" j;
    s_counts = get_int_array "counts" j;
  }

let phase_kind_of_string name = function
  | "blue" -> Ewalk.Eprocess.Blue
  | "red" -> Ewalk.Eprocess.Red
  | other -> fail "field %S has unknown phase kind %S" name other

let phase_of_json j : Ewalk.Eprocess.phase =
  {
    kind = phase_kind_of_string "phases" (get_string "kind" j);
    start_step = get_int "start_step" j;
    start_vertex = get_int "start_vertex" j;
    end_step = get_int "end_step" j;
    end_vertex = get_int "end_vertex" j;
  }

let walk_of_payload g j =
  let n = get_int "n" j and m = get_int "m" j in
  if n <> Graph.n g || m <> Graph.m g then
    raise
      (Bad
         (Printf.sprintf
            "recorded on a graph with n=%d m=%d, but the given graph has \
             n=%d m=%d"
            n m (Graph.n g) (Graph.m g)));
  match get_string "kind" j with
  | "eprocess" ->
      let ck : Ewalk.Eprocess.checkpoint =
        {
          ck_rule =
            (match get_string "rule" j with
            | "uar" -> `Uar
            | "lowest-slot" -> `Lowest_slot
            | "highest-slot" -> `Highest_slot
            | other -> fail "unknown e-process rule %S" other);
          ck_pos = get_int "pos" j;
          ck_steps = get_int "steps" j;
          ck_blue_steps = get_int "blue_steps" j;
          ck_red_steps = get_int "red_steps" j;
          ck_rng = get_rng_words "rng" j;
          ck_coverage = coverage_of_json (field "coverage" j);
          ck_unvisited = unvisited_of_json (field "unvisited" j);
          ck_record_phases = get_bool "record_phases" j;
          ck_current_phase =
            (match field "current_phase" j with
            | Json.Null -> None
            | p ->
                Some
                  ( phase_kind_of_string "current_phase" (get_string "kind" p),
                    get_int "start_step" p,
                    get_int "start_vertex" p ));
          ck_phases =
            (match field "phases" j with
            | Json.List l -> List.map phase_of_json l
            | _ -> fail "field \"phases\" is not an array");
        }
      in
      Eprocess (Ewalk.Eprocess.of_checkpoint g ck)
  | ("srw" | "lazy-srw") as kind ->
      let ck : Ewalk.Srw.checkpoint =
        {
          ck_kind = (if kind = "srw" then `Simple else `Lazy);
          ck_pos = get_int "pos" j;
          ck_steps = get_int "steps" j;
          ck_rng = get_rng_words "rng" j;
          ck_coverage = coverage_of_json (field "coverage" j);
        }
      in
      Srw (Ewalk.Srw.of_checkpoint g ck)
  | "rotor" ->
      let ck : Ewalk.Rotor.checkpoint =
        {
          ck_pos = get_int "pos" j;
          ck_steps = get_int "steps" j;
          ck_rotor = get_int_array "rotor" j;
          ck_coverage = coverage_of_json (field "coverage" j);
        }
      in
      Rotor (Ewalk.Rotor.of_checkpoint g ck)
  | "kernel" ->
      let proc =
        match get_string "proc" j with
        | "e-uar" -> Kengine.E_uar
        | "e-lowest" -> Kengine.E_lowest
        | "e-highest" -> Kengine.E_highest
        | "srw" -> Kengine.Srw
        | "rotor" -> Kengine.Rotor
        | other -> fail "unknown kernel proc %S" other
      in
      let kernel_phase_kind name = function
        | "blue" -> Kengine.Blue
        | "red" -> Kengine.Red
        | other -> fail "field %S has unknown phase kind %S" name other
      in
      let phase =
        match field "phase" j with
        | Json.List l ->
            Array.of_list
              (List.map
                 (fun p ->
                   match p with
                   | Json.Null -> None
                   | p ->
                       Some
                         ( kernel_phase_kind "phase" (get_string "kind" p),
                           get_int "start_step" p,
                           get_int "start_vertex" p ))
                 l)
        | _ -> fail "field \"phase\" is not an array"
      in
      let ck : Kengine.checkpoint =
        {
          ck_proc = proc;
          ck_pos = get_int_array "pos" j;
          ck_cursor = get_int "cursor" j;
          ck_steps = get_int "steps" j;
          ck_wsteps = get_int_array "wsteps" j;
          ck_wblue = get_int_array "wblue" j;
          ck_wred = get_int_array "wred" j;
          ck_prng = get_rng_words "prng" j;
          ck_coverage = coverage_of_json (field "coverage" j);
          ck_unvisited =
            (match field "unvisited" j with
            | Json.Null -> None
            | u -> Some (unvisited_of_json u));
          ck_rotor =
            (match field "rotor" j with
            | Json.Null -> None
            | _ -> Some (get_int_array "rotor" j));
          ck_phase = phase;
        }
      in
      let w = Array.length ck.Kengine.ck_pos in
      if Array.length phase <> w then
        fail "field \"phase\" has %d entries for %d walkers"
          (Array.length phase) w;
      Kernel (Kengine.of_checkpoint g ck)
  | "kernel-competing" ->
      let proc =
        match get_string "proc" j with
        | "e-uar" -> Kengine.E_uar
        | "e-lowest" -> Kengine.E_lowest
        | "e-highest" -> Kengine.E_highest
        | "srw" -> Kengine.Srw
        | "rotor" -> Kengine.Rotor
        | other -> fail "unknown kernel proc %S" other
      in
      let kernel_phase_kind name = function
        | "blue" -> Kengine.Blue
        | "red" -> Kengine.Red
        | other -> fail "field %S has unknown phase kind %S" name other
      in
      let phase =
        match field "phase" j with
        | Json.List l ->
            Array.of_list
              (List.map
                 (fun p ->
                   match p with
                   | Json.Null -> None
                   | p ->
                       Some
                         ( kernel_phase_kind "phase" (get_string "kind" p),
                           get_int "start_step" p,
                           get_int "start_vertex" p ))
                 l)
        | _ -> fail "field \"phase\" is not an array"
      in
      let bitsets name ~len =
        match field name j with
        | Json.List l ->
            Array.of_list
              (List.map
                 (fun v ->
                   match Json.to_string_opt v with
                   | Some hex -> (
                       try Ewalk.Bitset.of_hex ~len hex
                       with Invalid_argument msg ->
                         fail "field %S: %s" name msg)
                   | None -> fail "field %S has a non-string entry" name)
                 l)
        | _ -> fail "field %S is not an array" name
      in
      let ck : Kengine.competing_checkpoint =
        {
          cc_proc = proc;
          cc_pos = get_int_array "pos" j;
          cc_cursor = get_int "cursor" j;
          cc_wsteps = get_int_array "wsteps" j;
          cc_wblue = get_int_array "wblue" j;
          cc_wred = get_int_array "wred" j;
          cc_prng = get_rng_words "prng" j;
          cc_visited = bitsets "visited" ~len:(Graph.m g);
          cc_vseen = bitsets "vseen" ~len:(Graph.n g);
          cc_vcount = get_int_array "vcount" j;
          cc_ecount = get_int_array "ecount" j;
          cc_cover_at = get_int_array "cover_at" j;
          cc_rotor =
            (match field "rotor" j with
            | Json.Null -> None
            | _ -> Some (get_int_array "rotor" j));
          cc_phase = phase;
        }
      in
      Kernel (Kengine.of_checkpoint_competing g ck)
  | other -> fail "unknown walk kind %S" other

(* ------------------------------------------------------------------ *)
(* Files *)

let write ~path walk =
  let payload = Json.to_string (payload_of_walk walk) in
  let crc = Crc32.to_hex (Crc32.string payload) in
  (* Run provenance lives in the header, next to the schema tag: the CRC
     covers the payload bytes only, so stamping the id does not disturb
     the walk-state checksum, and v1 readers that checked the payload
     alone never see it. *)
  let provenance =
    match Ewalk_obs.Runlog.current () with
    | None -> ""
    | Some r ->
        Printf.sprintf "\"run_id\":%s,\"parent_run_id\":%s,"
          (Json.to_string (Json.String r.Ewalk_obs.Runlog.run_id))
          (match r.Ewalk_obs.Runlog.parent_run_id with
          | None -> "null"
          | Some p -> Json.to_string (Json.String p))
  in
  let line =
    Printf.sprintf "{\"schema\":%s,%s\"crc32\":\"%s\",\"payload\":%s}"
      (Json.to_string (Json.String schema))
      provenance crc payload
  in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc line;
       output_char oc '\n';
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path;
    Ok ()
  with Sys_error msg -> Error (Io msg)

(* CRC-verify the file and hand back the payload.  The checksum covers the
   payload's serialized bytes: the reader re-serializes the parsed payload,
   which is byte-identical to what the writer hashed because the JSON
   serializer is deterministic and snapshot payloads carry no floats. *)
(* Run provenance from the header.  A v2 header carries [run_id] (and
   optionally [parent_run_id]); both must be well-formed ids or the file
   is rejected as tampered.  A v1 header (or a v2 writer with no ambient
   run) carries none — a stable legacy id is synthesized from the payload
   bytes so every snapshot still joins to {e some} id. *)
let provenance_of_header doc ~payload_str =
  match Json.member "run_id" doc with
  | None ->
      Ok
        {
          Ewalk_obs.Runlog.run_id =
            Ewalk_obs.Runlog.synthesize_legacy payload_str;
          parent_run_id = None;
        }
  | Some (Json.String id) when Ewalk_obs.Runlog.validate_id id -> (
      match Json.member "parent_run_id" doc with
      | None | Some Json.Null ->
          Ok { Ewalk_obs.Runlog.run_id = id; parent_run_id = None }
      | Some (Json.String p) when Ewalk_obs.Runlog.validate_id p ->
          Ok { Ewalk_obs.Runlog.run_id = id; parent_run_id = Some p }
      | Some _ -> Error (Corrupt "malformed parent_run_id field"))
  | Some _ -> Error (Corrupt "malformed run_id field")

let read_payload ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_all ic)
  with
  | exception Sys_error msg -> Error (Io msg)
  | raw -> (
      match Json.of_string raw with
      | Error msg -> Error (Corrupt ("not a JSON document: " ^ msg))
      | Ok doc -> (
          match Option.bind (Json.member "schema" doc) Json.to_string_opt with
          | None -> Error (Corrupt "no schema tag")
          | Some s when s <> schema && s <> schema_v1 ->
              Error
                (Mismatch
                   (Printf.sprintf "schema %S, this reader understands %S" s
                      schema))
          | Some _ -> (
              match
                ( Option.bind (Json.member "crc32" doc) Json.to_string_opt,
                  Json.member "payload" doc )
              with
              | None, _ -> Error (Corrupt "no crc32 field")
              | _, None -> Error (Corrupt "no payload field")
              | Some crc_hex, Some payload -> (
                  match Crc32.of_hex crc_hex with
                  | None ->
                      Error (Corrupt ("malformed crc32 field " ^ crc_hex))
                  | Some stored ->
                      let payload_str = Json.to_string payload in
                      let actual = Crc32.string payload_str in
                      if stored <> actual then
                        Error
                          (Corrupt
                             (Printf.sprintf
                                "checksum mismatch (stored %s, computed %s)"
                                crc_hex (Crc32.to_hex actual)))
                      else
                        Result.map
                          (fun run -> (payload, run))
                          (provenance_of_header doc ~payload_str)))))

let read_with_id g ~path =
  match read_payload ~path with
  | Error _ as e -> e
  | Ok (payload, run) -> (
      try Ok (walk_of_payload g payload, run) with
      | Bad msg -> Error (Mismatch msg)
      | Invalid_argument msg -> Error (Mismatch msg))

let read g ~path = Result.map fst (read_with_id g ~path)

(* Set bits in a bitset's hex serialization, without materializing the
   bitset — [describe] has no graph to size one against. *)
let hex_popcount name s =
  let nibble = function
    | '0' -> 0
    | '1' | '2' | '4' | '8' -> 1
    | '3' | '5' | '6' | '9' | 'a' | 'c' -> 2
    | '7' | 'b' | 'd' | 'e' -> 3
    | 'f' -> 4
    | c -> fail "field %S has a non-hex digit %C" name c
  in
  String.fold_left (fun acc c -> acc + nibble c) 0 s

let hex_popcounts name j =
  match field name j with
  | Json.List l ->
      Array.of_list
        (List.map
           (fun v ->
             match Json.to_string_opt v with
             | Some s -> hex_popcount name s
             | None -> fail "field %S has a non-string entry" name)
           l)
  | _ -> fail "field %S is not an array" name

let describe ~path =
  match read_payload ~path with
  | Error _ as e -> e
  | Ok (payload, run) -> (
      try
        let kind = get_string "kind" payload in
        let n = get_int "n" payload and m = get_int "m" payload in
        let steps = get_int "steps" payload in
        let where =
          match kind with
          | "kernel" | "kernel-competing" ->
              Printf.sprintf "%d walkers (cursor %d)"
                (get_int "walkers" payload)
                (get_int "cursor" payload)
          | _ -> Printf.sprintf "at vertex %d" (get_int "pos" payload)
        in
        let extra =
          match kind with
          | "eprocess" ->
              Printf.sprintf " rule=%s blue=%d red=%d"
                (get_string "rule" payload)
                (get_int "blue_steps" payload)
                (get_int "red_steps" payload)
          | "kernel" | "kernel-competing" ->
              Printf.sprintf " proc=%s" (get_string "proc" payload)
          | _ -> ""
        in
        let run_suffix =
          Printf.sprintf " [run %s%s]" run.Ewalk_obs.Runlog.run_id
            (match run.Ewalk_obs.Runlog.parent_run_id with
            | None -> ""
            | Some p -> " parent " ^ p)
        in
        match kind with
        | "kernel-competing" ->
            (* No shared coverage table: report per-walker visit counters,
               cross-checked against the bitset popcounts the way a resume
               would — the crash matrix greps for the verdict. *)
            let vcount = get_int_array "vcount" payload in
            let ecount = get_int_array "ecount" payload in
            let vpop = hex_popcounts "vseen" payload in
            let epop = hex_popcounts "visited" payload in
            if
              Array.length vpop <> Array.length vcount
              || Array.length epop <> Array.length ecount
            then fail "bitset arrays do not match the counter arrays";
            if vpop <> vcount || epop <> ecount then
              fail
                "stored visit counter disagrees with its bitset popcount \
                 (counter!=popcount)";
            let best = Array.fold_left max 0 vcount in
            Ok
              (Printf.sprintf
                 "%s: %s walk on n=%d m=%d, %d steps, %s, best walker %d/%d \
                  vertices, counters verified (counter==popcount)%s%s"
                 schema kind n m steps where best n extra run_suffix)
        | _ ->
            let coverage = field "coverage" payload in
            Ok
              (Printf.sprintf
                 "%s: %s walk on n=%d m=%d, %d steps, %s, %d/%d vertices \
                  %d/%d edges visited%s%s"
                 schema kind n m steps where
                 (get_int "vertices_seen" coverage)
                 n
                 (get_int "edges_seen" coverage)
                 m extra run_suffix)
      with Bad msg -> Error (Corrupt msg))
