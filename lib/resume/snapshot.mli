(** Versioned, CRC-guarded serialization of full walk state.

    A snapshot captures everything a walk process needs to continue
    bit-identically after a crash: position, step and phase counters,
    the {!Ewalk.Coverage} arrays, the {!Ewalk.Unvisited} partition and the
    exact PRNG state words.  Restoring a snapshot and stepping on produces
    the same states, traces and final coverage as a run that was never
    interrupted — the property the qcheck round-trip suite enforces.

    {2 File format}

    One line of JSON:
    [{"schema":"ewalk-snapshot/2","run_id":"r<16 hex>","parent_run_id":
    null,"crc32":"<8 hex digits>","payload":{...}}]
    where [crc32] is the CRC-32 of the serialized [payload] object, byte
    for byte as written.  The [schema] tag names the payload layout and is
    bumped on incompatible changes; readers reject unknown schemas rather
    than guessing.  Writes are atomic (temp file + rename in the target
    directory), so a crash mid-write leaves either the old snapshot or
    none — never a torn one; a torn or edited file fails the CRC and is
    rejected as {!Corrupt}.

    Since v2 the header also stamps the writing run's
    {!Ewalk_obs.Runlog} id (and its parent's, when the writer was itself
    a resume leg).  The id sits outside the CRC-guarded payload so walk
    state and provenance stay independently verifiable; a present but
    malformed id is rejected as {!Corrupt}.  v1 files (no [run_id]) still
    load — a stable legacy id is synthesized from the payload bytes. *)

open Ewalk_graph

val schema : string
(** ["ewalk-snapshot/2"] — what {!write} stamps.  {!read} also accepts
    ["ewalk-snapshot/1"]. *)

type walk =
  | Eprocess of Ewalk.Eprocess.t
  | Srw of Ewalk.Srw.t
  | Rotor of Ewalk.Rotor.t
  | Kernel of Ewalk_kernel.Engine.t
      (** The processes that can be snapshotted.  [Kernel] carries a
          multi-walker engine in either mode: a cooperating engine
          serializes under payload kind ["kernel"] (positions, per-walker
          step/phase counters, shared coverage/partition and the packed
          PRNG bank), a competing engine under the v2-only kind
          ["kernel-competing"] (per-walker bit-packed visited sets as hex
          strings, plus the derived visit counters for inspectability —
          restore recomputes them by popcount and rejects disagreement,
          see [Ewalk_kernel.Engine.of_checkpoint_competing]).  Excluded:
          adversarial E-process rules and weighted walks (both carry
          state that is not plain data — see the core [checkpoint]
          functions). *)

val kind_name : walk -> string
(** The process name, e.g. ["e-process(uar)"], ["lazy-srw"]. *)

val walk_steps : walk -> int
val walk_position : walk -> int

type error =
  | Io of string  (** file unreadable / unwritable *)
  | Corrupt of string  (** torn, truncated, tampered or non-JSON file *)
  | Mismatch of string
      (** valid file, wrong world: unknown schema, wrong graph, or a
          payload that fails the state validators *)

val error_to_string : error -> string

val write : path:string -> walk -> (unit, error) result
(** Serialize the walk's full state to [path], atomically: the bytes are
    written to a temp file in the same directory and renamed over [path].
    @raise Invalid_argument if the walk is not serializable (adversarial
    rule / weighted walk). *)

val read : Graph.t -> path:string -> (walk, error) result
(** Load a snapshot recorded on exactly this graph.  The CRC is verified
    before any payload field is trusted. *)

val read_with_id :
  Graph.t -> path:string -> (walk * Ewalk_obs.Runlog.t, error) result
(** Like {!read}, also yielding the writing run's provenance: the header
    [run_id]/[parent_run_id] pair, or a synthesized legacy id for v1
    files.  Resume legs use this to adopt the parent id. *)

val describe : path:string -> (string, error) result
(** CRC-verify the file and render a short human summary (kind, graph
    size, step counters) without needing the graph — what
    [eproc checkpoint-inspect] prints.  For ["kernel-competing"]
    payloads the stored per-walker visit counters are cross-checked
    against the bitset popcounts; the summary carries the verdict
    marker [counter==popcount] on success and the file is reported
    {!Corrupt} on disagreement. *)
