(* Loopback HTTP/1.x client: connect, write one request, read to EOF
   (the server always closes), parse the status line and headers, decode
   chunked transfer when announced. *)

module Json = Ewalk_obs.Json

type response = { status : int; body : string }

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | k ->
        Buffer.add_subbytes buf chunk 0 k;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> go ()
  in
  go ();
  Buffer.contents buf

let split_head raw =
  let rec scan i =
    if i + 3 < String.length raw then
      if
        raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
        && raw.[i + 3] = '\n'
      then Some (String.sub raw 0 i, String.sub raw (i + 4) (String.length raw - i - 4))
      else if raw.[i] = '\n' && raw.[i + 1] = '\n' then
        Some (String.sub raw 0 i, String.sub raw (i + 2) (String.length raw - i - 2))
      else scan (i + 1)
    else None
  in
  scan 0

let header_value head name =
  String.split_on_char '\n' head
  |> List.find_map (fun line ->
         match String.index_opt line ':' with
         | None -> None
         | Some i ->
             let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
             if k = name then
               Some
                 (String.lowercase_ascii
                    (String.trim
                       (String.sub line (i + 1) (String.length line - i - 1))))
             else None)

(* Chunked transfer: hex size line, data, CRLF, ...; a zero-size chunk
   ends the stream.  A missing terminal chunk means the server died
   mid-stream — surfaced as an error so tests can assert on it. *)
let dechunk raw =
  let buf = Buffer.create (String.length raw) in
  let len = String.length raw in
  let rec line_end i = if i >= len then None else if raw.[i] = '\n' then Some i else line_end (i + 1) in
  let rec go i =
    match line_end i with
    | None -> Error "truncated chunk stream"
    | Some e -> (
        let size_line = String.trim (String.sub raw i (e - i)) in
        let size_line =
          match String.index_opt size_line ';' with
          | Some s -> String.sub size_line 0 s
          | None -> size_line
        in
        match int_of_string_opt ("0x" ^ size_line) with
        | None -> Error ("bad chunk size " ^ size_line)
        | Some 0 -> Ok (Buffer.contents buf)
        | Some sz ->
            if e + 1 + sz > len then Error "truncated chunk"
            else begin
              Buffer.add_substring buf raw (e + 1) sz;
              (* Skip the CRLF after the data. *)
              let next = e + 1 + sz in
              let next = if next < len && raw.[next] = '\r' then next + 1 else next in
              let next = if next < len && raw.[next] = '\n' then next + 1 else next in
              go next
            end)
  in
  go 0

let request ~port ~meth ~path ?(body = "") () =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | fd -> (
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      match
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      with
      | exception Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      | () -> (
          let req =
            Printf.sprintf
              "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: \
               %d\r\nConnection: close\r\n\r\n%s"
              meth path (String.length body) body
          in
          match
            let b = Bytes.unsafe_of_string req in
            let off = ref 0 in
            while !off < Bytes.length b do
              off := !off + Unix.write fd b !off (Bytes.length b - !off)
            done;
            read_all fd
          with
          | exception Unix.Unix_error (e, fn, _) ->
              Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
          | raw -> (
              match split_head raw with
              | None -> Error "no header/body separator in response"
              | Some (head, rest) -> (
                  match String.split_on_char ' ' head with
                  | _http :: code :: _ -> (
                      match int_of_string_opt code with
                      | None -> Error ("bad status line: " ^ head)
                      | Some status ->
                          if header_value head "transfer-encoding" = Some "chunked"
                          then
                            Result.map
                              (fun body -> { status; body })
                              (dechunk rest)
                          else Ok { status; body = rest })
                  | _ -> Error ("bad status line: " ^ head)))))

let request_json ~port ~meth ~path ?body () =
  let body = Option.map Json.to_string body in
  match request ~port ~meth ~path ?body () with
  | Error e -> Error e
  | Ok { status; body } -> (
      match Json.of_string (String.trim body) with
      | Ok j -> Ok (status, j)
      | Error e ->
          Error (Printf.sprintf "status %d: unparsable body (%s)" status e))
