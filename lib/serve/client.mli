(** A minimal loopback HTTP client for the [eprocd] protocol: one
    request per connection (the server speaks [Connection: close]),
    fixed and chunked response bodies both decoded.  This is what
    [eproc load-test], the serve bench kernels and the conformance tests
    drive the daemon with — no external HTTP dependency. *)

type response = { status : int; body : string }

val request :
  port:int ->
  meth:string ->
  path:string ->
  ?body:string ->
  unit ->
  (response, string) result
(** Perform one request against [127.0.0.1:port].  [body] (default
    empty) is sent with a [Content-Length] header.  The response body is
    de-chunked when the server streamed it.  [Error] carries connect /
    IO / parse failures. *)

val request_json :
  port:int ->
  meth:string ->
  path:string ->
  ?body:Ewalk_obs.Json.t ->
  unit ->
  (int * Ewalk_obs.Json.t, string) result
(** {!request} with a JSON body and a JSON-parsed response. *)
