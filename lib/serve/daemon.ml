(* Wire a registry to the transport.  Kept deliberately thin: policy
   lives in Registry, dispatch in Router, HTTP in Obs.Serve. *)

module Obs = Ewalk_obs

type t = {
  server : Obs.Serve.t;
  reg : Registry.t;
  sd : string;
  mutable stopped_flag : bool;
}

let fresh_state_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d =
      Filename.concat base
        (Printf.sprintf "eprocd-%d-%d" (Unix.getpid ()) k)
    in
    match Unix.mkdir d 0o755 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
  in
  go 0

let start ?port ?state_dir ?resident_cap ?max_n ?pool () =
  let sd = match state_dir with Some d -> d | None -> fresh_state_dir () in
  let reg = Registry.create ?pool ?resident_cap ?max_n ~state_dir:sd () in
  Obs.Runlog.note_artifact ~key:"eprocd-state" ~path:sd;
  match Obs.Serve.start_router ?port (Router.handler reg) with
  | Error e -> Error e
  | Ok server -> Ok { server; reg; sd; stopped_flag = false }

let port t = Obs.Serve.port t.server
let registry t = t.reg
let state_dir t = t.sd
let stopped t = t.stopped_flag || Obs.Serve.stopped t.server

let stop t =
  if t.stopped_flag then 0
  else begin
    t.stopped_flag <- true;
    (* Stop accepting before hibernating so no request races the final
       snapshots. *)
    Obs.Serve.stop t.server;
    Registry.hibernate_all t.reg
  end
