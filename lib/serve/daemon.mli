(** Assembly: a {!Registry} mounted on the {!Ewalk_obs.Serve} router
    transport — the whole daemon as a library value, so [eprocd],
    [eproc load-test] (in-process mode), the bench kernels and the
    conformance tests all run the identical stack. *)

type t

val start :
  ?port:int ->
  ?state_dir:string ->
  ?resident_cap:int ->
  ?max_n:int ->
  ?pool:Ewalk_par.Pool.t ->
  unit ->
  (t, string) result
(** Bind loopback [port] (default 0: ephemeral), open [state_dir]
    (default: a fresh unique directory under the system temp dir),
    recover any sessions found there, serve.  The state dir is noted as
    a {!Ewalk_obs.Runlog} artifact when a run is ambient. *)

val port : t -> int
val registry : t -> Registry.t
val state_dir : t -> string

val stopped : t -> bool
(** True once [/quit] was answered or {!stop} began. *)

val stop : t -> int
(** Graceful shutdown: hibernate every resident session (returning how
    many snapshots were written), then stop the listener.  Idempotent. *)
