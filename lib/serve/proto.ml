(* Session-protocol shapes and validation.  Everything here is pure: the
   router parses and validates through this module before any registry
   state is touched, so malformed input is rejected without side
   effects. *)

module Json = Ewalk_obs.Json

type mode = Cooperating | Competing

let mode_name = function
  | Cooperating -> "cooperating"
  | Competing -> "competing"

type config = {
  family : string;
  n : int;
  process : string;
  seed : int;
  walkers : int;
  mode : mode;
}

type error = { status : int; code : string; message : string }

let err status code message = { status; code; message }
let internal msg = err 500 "internal" msg

let error_body e =
  Json.to_string
    (Json.Obj
       [
         ( "error",
           Json.Obj
             [
               ("code", Json.String e.code);
               ("message", Json.String e.message);
             ] );
       ])
  ^ "\n"

let max_walkers = 4096
let max_steps_per_request = 50_000_000
let max_family_len = 64

(* The processes a session can run: exactly the Snapshot-serializable
   subset (hibernation needs Snapshot.write to succeed).  The kernel
   engine ports everything but lazy-srw. *)
let single_specs =
  [ "e-process"; "e-process:lowest"; "e-process:highest"; "srw"; "lazy-srw"; "rotor" ]

let kernel_specs =
  [ "e-process"; "e-process:lowest"; "e-process:highest"; "srw"; "rotor" ]

let snapshottable ~walkers ~mode spec =
  if walkers > 1 || mode = Competing then List.mem spec kernel_specs
  else List.mem spec single_specs

let config_to_json c =
  Json.Obj
    [
      ("family", Json.String c.family);
      ("n", Json.Int c.n);
      ("process", Json.String c.process);
      ("seed", Json.Int c.seed);
      ("walkers", Json.Int c.walkers);
      ("mode", Json.String (mode_name c.mode));
    ]

let parse_body body =
  let body = String.trim body in
  if body = "" then Ok (Json.Obj [])
  else
    match Json.of_string body with
    | Ok j -> Ok j
    | Error e -> Error (err 400 "bad_json" e)

let field_int j name =
  Option.bind (Json.member name j) Json.to_int_opt

let field_string j name =
  Option.bind (Json.member name j) Json.to_string_opt

(* Reject a field that is present but of the wrong type, rather than
   silently applying the default. *)
let opt_int j name ~default =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match Json.to_int_opt v with
      | Some k -> Ok k
      | None -> Error (err 400 "bad_field" (name ^ " must be an integer")))

let opt_string j name ~default =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match Json.to_string_opt v with
      | Some s -> Ok s
      | None -> Error (err 400 "bad_field" (name ^ " must be a string")))

let ( let* ) = Result.bind

let config_of_json ~max_n j =
  match j with
  | Json.Obj _ ->
      let* family =
        match field_string j "family" with
        | Some f -> Ok f
        | None -> Error (err 400 "missing_field" "family is required")
      in
      let* n =
        match field_int j "n" with
        | Some n -> Ok n
        | None -> Error (err 400 "missing_field" "n is required")
      in
      let* process = opt_string j "process" ~default:"e-process" in
      let* seed = opt_int j "seed" ~default:1 in
      let* walkers = opt_int j "walkers" ~default:1 in
      let* mode =
        match field_string j "mode" with
        | None -> Ok Cooperating
        | Some "cooperating" -> Ok Cooperating
        | Some "competing" -> Ok Competing
        | Some other ->
            Error
              (err 400 "bad_field"
                 ("mode must be cooperating or competing, not " ^ other))
      in
      if String.length family = 0 || String.length family > max_family_len
      then Error (err 400 "bad_family" "family spec empty or oversized")
      else if n < 2 then Error (err 400 "bad_n" "n must be at least 2")
      else if n > max_n then
        Error
          (err 413 "graph_too_large"
             (Printf.sprintf "n=%d exceeds the daemon cap %d" n max_n))
      else if walkers < 1 || walkers > max_walkers then
        Error
          (err 400 "bad_walkers"
             (Printf.sprintf "walkers must be in [1,%d]" max_walkers))
      else if not (snapshottable ~walkers ~mode process) then
        Error
          (err 400 "unknown_process"
             (Printf.sprintf
                "process %S is not servable with walkers=%d mode=%s \
                 (sessions must be snapshottable)"
                process walkers (mode_name mode)))
      else Ok { family; n; process; seed; walkers; mode }
  | _ -> Error (err 400 "bad_json" "request body must be a JSON object")

type step_request = Steps of int | To_cover of int option

let check_steps k =
  if k <= 0 then Error (err 400 "bad_steps" "steps must be positive")
  else if k > max_steps_per_request then
    Error
      (err 400 "bad_steps"
         (Printf.sprintf "steps must be at most %d" max_steps_per_request))
  else Ok k

let step_request_of_json j =
  match j with
  | Json.Obj _ -> (
      match field_string j "until" with
      | Some "cover" -> (
          match Json.member "cap" j with
          | None | Some Json.Null -> Ok (To_cover None)
          | Some v -> (
              match Json.to_int_opt v with
              | Some c when c > 0 -> Ok (To_cover (Some c))
              | _ -> Error (err 400 "bad_field" "cap must be a positive integer")))
      | Some other ->
          Error (err 400 "bad_field" ("unknown milestone " ^ other))
      | None -> (
          match Json.member "steps" j with
          | None ->
              Error (err 400 "missing_field" "steps (or until) is required")
          | Some v -> (
              match Json.to_int_opt v with
              | Some k ->
                  let* k = check_steps k in
                  Ok (Steps k)
              | None ->
                  Error (err 400 "bad_field" "steps must be an integer"))))
  | _ -> Error (err 400 "bad_json" "request body must be a JSON object")

let steps_query q =
  match List.assoc_opt "steps" q with
  | None -> Error (err 400 "missing_field" "steps query parameter is required")
  | Some s -> (
      match int_of_string_opt s with
      | Some k -> check_steps k
      | None -> Error (err 400 "bad_field" "steps must be an integer"))
