(** The [eprocd] session protocol: request/response shapes, validation,
    and the structured error envelope.

    Every request body and response is JSON ({!Ewalk_obs.Json}); errors
    are always [{"error":{"code":...,"message":...}}] with a 4xx/5xx
    status, so a client needs exactly one decoder.  Validation is strict
    and happens before any state is touched: a malformed body, an unknown
    process, an oversized graph or a negative step count can never crash
    the daemon — they are answered and forgotten. *)

type mode = Cooperating | Competing

type config = {
  family : string;  (** graph family spec, e.g. ["regular:4"] *)
  n : int;  (** vertex count *)
  process : string;  (** process spec, e.g. ["e-process:lowest"] *)
  seed : int;  (** PRNG seed: the graph and the walk derive from it *)
  walkers : int;  (** lockstep walker count (1 = legacy loop) *)
  mode : mode;
}

val mode_name : mode -> string

type error = { status : int; code : string; message : string }

val err : int -> string -> string -> error
val error_body : error -> string
(** The JSON error envelope, newline-terminated. *)

val internal : string -> error
(** A 500 wrapping an unexpected exception message. *)

val snapshottable : walkers:int -> mode:mode -> string -> bool
(** Whether the process spec can be served: it must round-trip through
    {!Ewalk_resume.Snapshot} (hibernation depends on it).  Single-walker
    cooperating sessions accept the e-process rules, [srw], [lazy-srw]
    and [rotor]; multi-walker or competing sessions accept the kernel
    ports (everything but [lazy-srw]). *)

val max_walkers : int
val max_steps_per_request : int

val config_to_json : config -> Ewalk_obs.Json.t

val config_of_json : max_n:int -> Ewalk_obs.Json.t -> (config, error) result
(** Decode and validate a create-session body.  Defaults: [process]
    ["e-process"], [seed] 1, [walkers] 1, [mode] cooperating.  [family]
    and [n] are required. *)

val parse_body : string -> (Ewalk_obs.Json.t, error) result
(** Parse a request body as JSON (400 [bad_json] on failure; an empty
    body parses as an empty object). *)

type step_request =
  | Steps of int  (** advance exactly this many steps *)
  | To_cover of int option  (** run to the cover milestone, optional cap *)

val step_request_of_json : Ewalk_obs.Json.t -> (step_request, error) result
(** [{"steps":K}] or [{"until":"cover","cap":K?}].  A zero, negative or
    absurdly large step count is a 400. *)

val steps_query : (string * string) list -> (int, error) result
(** The [?steps=K] parameter of the trace endpoint, same bounds as
    {!step_request_of_json}. *)
