(* The session table and its policies: LRU residency under a hard cap,
   (family, n, seed)-keyed graph sharing, id allocation that survives
   restarts, and crash recovery from the state directory.  One mutex
   serializes everything — the serving domain and any in-process
   harness see atomic operations. *)

module Obs = Ewalk_obs
module Json = Obs.Json
module Rng = Ewalk_prng.Rng
module Graph = Ewalk_graph.Graph

type graph_key = { gk_family : string; gk_n : int; gk_seed : int }

type graph_entry = {
  ge_graph : Graph.t;
  ge_rng_words : int64 array;  (* PRNG state right after the build *)
  mutable ge_lru : int;
}

type t = {
  lock : Mutex.t;
  state_dir : string;
  cap : int;
  max_n : int;
  graph_cache : int;
  pool : Ewalk_par.Pool.t option;
  sessions : (string, Session.t) Hashtbl.t;
  graphs : (graph_key, graph_entry) Hashtbl.t;
  mutable tick : int;
  mutable next_id : int;
  metrics : Obs.Metrics.t;
  c_created : Obs.Metrics.counter;
  c_deleted : Obs.Metrics.counter;
  c_hibernations : Obs.Metrics.counter;
  c_rehydrations : Obs.Metrics.counter;
  c_steps : Obs.Metrics.counter;
  g_sessions : Obs.Metrics.gauge;
  g_resident : Obs.Metrics.gauge;
}

let metrics t = t.metrics
let resident_cap t = t.cap
let max_n t = t.max_n

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let sessions_dir t = Filename.concat t.state_dir "sessions"

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let count_resident t =
  Hashtbl.fold (fun _ s acc -> if Session.resident s then acc + 1 else acc)
    t.sessions 0

let update_gauges t =
  Obs.Metrics.set t.g_sessions (float_of_int (Hashtbl.length t.sessions));
  Obs.Metrics.set t.g_resident (float_of_int (count_resident t))

let session_count t = locked t (fun () -> Hashtbl.length t.sessions)
let resident_count t = locked t (fun () -> count_resident t)

(* -- graph cache ----------------------------------------------------------- *)

(* Building a family can raise Invalid_argument (unknown spec) or be
   genuinely expensive; both reasons to funnel through here.  The cached
   post-build PRNG words make create-on-cached-graph draw-identical to
   create-with-fresh-build. *)
let get_graph t (c : Proto.config) =
  let key = { gk_family = c.family; gk_n = c.n; gk_seed = c.seed } in
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.graphs key with
  | Some e ->
      e.ge_lru <- t.tick;
      Ok (e.ge_graph, Rng.restore e.ge_rng_words)
  | None -> (
      match
        let rng = Rng.create ~seed:c.seed () in
        let g = Ewalk_expt.Families.build c.family rng ~n:c.n in
        (g, rng)
      with
      | exception Invalid_argument msg ->
          Error (Proto.err 400 "bad_family" msg)
      | exception e ->
          Error (Proto.internal ("graph build: " ^ Printexc.to_string e))
      | g, rng ->
          if Hashtbl.length t.graphs >= t.graph_cache then begin
            (* Evict the least-recently-used entry. *)
            let victim = ref None in
            Hashtbl.iter
              (fun k e ->
                match !victim with
                | Some (_, lru) when lru <= e.ge_lru -> ()
                | _ -> victim := Some (k, e.ge_lru))
              t.graphs;
            match !victim with
            | Some (k, _) -> Hashtbl.remove t.graphs k
            | None -> ()
          end;
          Hashtbl.replace t.graphs key
            { ge_graph = g; ge_rng_words = Rng.save rng; ge_lru = t.tick };
          Ok (g, Rng.restore (Rng.save rng)))

(* -- residency ------------------------------------------------------------- *)

(* Hibernate LRU residents until the cap holds; [keep] is never evicted
   (it is the session the current request is about to use). *)
let enforce_cap t ~keep =
  let excess () = count_resident t - t.cap in
  while excess () > 0 do
    let victim = ref None in
    Hashtbl.iter
      (fun _ s ->
        if Session.resident s && Some (Session.id s) <> keep then
          match !victim with
          | Some v when Session.last_used v <= Session.last_used s -> ()
          | _ -> victim := Some s)
      t.sessions;
    match !victim with
    | None -> raise Exit (* only [keep] is resident; cap >= 1 holds *)
    | Some s -> (
        match Session.hibernate s with
        | Ok () -> Obs.Metrics.incr t.c_hibernations
        | Error e ->
            (* An unwritable state dir would loop forever; drop the
               session's resident state on the floor instead of wedging
               the daemon. *)
            prerr_endline ("eprocd: hibernate failed: " ^ e.Proto.message);
            raise Exit)
  done

let enforce_cap t ~keep = try enforce_cap t ~keep with Exit -> ()

(* -- recovery -------------------------------------------------------------- *)

let recover_sessions t =
  let dir = sessions_dir t in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      Array.sort compare entries;
      Array.iter
        (fun id ->
          let sdir = Filename.concat dir id in
          let meta = Filename.concat sdir "session.json" in
          if Sys.file_exists meta then begin
            let line =
              let ic = open_in meta in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> try input_line ic with End_of_file -> "")
            in
            match Json.of_string line with
            | Error _ -> ()
            | Ok j -> (
                match Session.meta_of_json j with
                | None -> ()
                | Some (cfg, sum) ->
                    Hashtbl.replace t.sessions id
                      (Session.recover ~id ~dir:sdir cfg sum);
                    (* Keep allocating above any recovered id. *)
                    (match
                       int_of_string_opt
                         (String.sub id 1 (String.length id - 1))
                     with
                    | Some k when id.[0] = 's' && k >= t.next_id ->
                        t.next_id <- k + 1
                    | _ -> ()))
          end)
        entries

let create ?pool ?(resident_cap = 256) ?(max_n = 1_000_000)
    ?(graph_cache = 16) ~state_dir () =
  let metrics = Obs.Metrics.create () in
  let t =
    {
      lock = Mutex.create ();
      state_dir;
      cap = max 1 resident_cap;
      max_n;
      graph_cache = max 1 graph_cache;
      pool;
      sessions = Hashtbl.create 64;
      graphs = Hashtbl.create 8;
      tick = 0;
      next_id = 1;
      metrics;
      c_created = Obs.Metrics.counter metrics "sessions_created";
      c_deleted = Obs.Metrics.counter metrics "sessions_deleted";
      c_hibernations = Obs.Metrics.counter metrics "hibernations";
      c_rehydrations = Obs.Metrics.counter metrics "rehydrations";
      c_steps = Obs.Metrics.counter metrics "serve_steps";
      g_sessions = Obs.Metrics.gauge metrics "sessions";
      g_resident = Obs.Metrics.gauge metrics "sessions_resident";
    }
  in
  mkdir_p (sessions_dir t);
  recover_sessions t;
  update_gauges t;
  t

(* -- operations ------------------------------------------------------------ *)

let create_session t cfg =
  locked t @@ fun () ->
  match get_graph t cfg with
  | Error e -> Error e
  | Ok (g, rng) -> (
      let id = Printf.sprintf "s%06d" t.next_id in
      t.next_id <- t.next_id + 1;
      let dir = Filename.concat (sessions_dir t) id in
      mkdir_p dir;
      match Session.create ~id ~dir ~graph:g ~rng cfg with
      | Error e -> Error e
      | Ok s ->
          t.tick <- t.tick + 1;
          Session.touch s ~tick:t.tick;
          Hashtbl.replace t.sessions id s;
          Obs.Metrics.incr t.c_created;
          enforce_cap t ~keep:(Some id);
          update_gauges t;
          Ok s)

let list t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions []
  |> List.sort (fun a b -> compare (Session.id a) (Session.id b))

let find t id = locked t @@ fun () -> Hashtbl.find_opt t.sessions id

let not_found id = Proto.err 404 "unknown_session" ("no session " ^ id)

let with_session t id f =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.sessions id with
  | None -> Error (not_found id)
  | Some s -> (
      let materialize () =
        if Session.resident s then Ok ()
        else
          match get_graph t (Session.config s) with
          | Error e -> Error e
          | Ok (g, rng) -> (
              match Session.materialize s ~graph:g ~rng with
              | Ok () ->
                  Obs.Metrics.incr t.c_rehydrations;
                  Ok ()
              | Error e -> Error e)
      in
      match materialize () with
      | Error e -> Error e
      | Ok () ->
          t.tick <- t.tick + 1;
          Session.touch s ~tick:t.tick;
          let r = f s ~pool:t.pool in
          enforce_cap t ~keep:(Some id);
          update_gauges t;
          r)

let note_steps t k = Obs.Metrics.add t.c_steps k

let hibernate t id =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.sessions id with
  | None -> Error (not_found id)
  | Some s ->
      if not (Session.resident s) then Ok ()
      else (
        match Session.hibernate s with
        | Ok () ->
            Obs.Metrics.incr t.c_hibernations;
            update_gauges t;
            Ok ()
        | Error e -> Error e)

let delete t id =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.sessions id with
  | None -> false
  | Some s ->
      Hashtbl.remove t.sessions id;
      Session.delete s;
      Obs.Metrics.incr t.c_deleted;
      update_gauges t;
      true

let hibernate_all t =
  locked t @@ fun () ->
  let n = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      if Session.resident s then
        match Session.hibernate s with
        | Ok () ->
            incr n;
            Obs.Metrics.incr t.c_hibernations
        | Error e ->
            prerr_endline ("eprocd: hibernate failed: " ^ e.Proto.message))
    t.sessions;
  update_gauges t;
  !n
