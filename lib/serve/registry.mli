(** The session table: id allocation, the resident-set LRU, graph
    caching, crash recovery and the daemon's metrics registry.

    All operations are serialized under one mutex, so the registry is
    safe to drive from the serving domain and in-process test/bench
    harnesses concurrently.  The resident cap is a hard bound: whenever
    an operation would leave more than [resident_cap] sessions live in
    memory, least-recently-used sessions hibernate to disk
    ({!Ewalk_resume.Snapshot}, provenance-stamped) until the bound
    holds.  Hibernated sessions rehydrate transparently on their next
    request.

    Graphs are deterministic functions of (family, n, seed) and are
    immutable once built, so an LRU cache shares one {!Ewalk_graph.Graph}
    across every session with the same config — a thousand sessions on
    the same family cost one adjacency structure.  The cache also
    remembers the post-build PRNG words, so a session created against a
    cached graph draws exactly the PRNG stream it would have drawn had it
    built the graph itself. *)

type t

val create :
  ?pool:Ewalk_par.Pool.t ->
  ?resident_cap:int ->
  ?max_n:int ->
  ?graph_cache:int ->
  state_dir:string ->
  unit ->
  t
(** Open (creating if needed) [state_dir] and recover any sessions a
    previous daemon left there.  Defaults: [resident_cap] 256 (clamped to
    at least 1), [max_n] 1_000_000, [graph_cache] 16 entries. *)

val metrics : t -> Ewalk_obs.Metrics.t
(** The daemon-wide registry behind [/metrics]: request/error counters,
    session lifecycle counters ([sessions_created], [sessions_deleted],
    [hibernations], [rehydrations]), [serve_steps] and the
    [sessions]/[sessions_resident] gauges. *)

val resident_cap : t -> int

val max_n : t -> int
(** The daemon's graph-size cap, applied when create bodies are
    validated. *)

val session_count : t -> int
val resident_count : t -> int

val create_session : t -> Proto.config -> (Session.t, Proto.error) result
val list : t -> Session.t list
(** Sorted by id. *)

val find : t -> string -> Session.t option
(** Lookup without materializing (cheap inspection). *)

val with_session :
  t ->
  string ->
  (Session.t -> pool:Ewalk_par.Pool.t option -> ('a, Proto.error) result) ->
  ('a, Proto.error) result
(** Materialize the session (rehydrating from its snapshot if needed),
    stamp the LRU clock, run [f] under the registry lock, then re-apply
    the resident cap.  Unknown ids are a 404. *)

val note_steps : t -> int -> unit
(** Bump the [serve_steps] throughput counter. *)

val hibernate : t -> string -> (unit, Proto.error) result
(** Explicit hibernation (idempotent) — the handle tests and the crash
    matrix use to force durable state at a known point. *)

val delete : t -> string -> bool
(** Remove the session and its on-disk state; [false] if unknown. *)

val hibernate_all : t -> int
(** Hibernate every resident session (graceful shutdown); returns how
    many were written. *)
