(* Request dispatch: parse/validate through Proto, execute through
   Registry, render JSON.  Nothing here may let an exception escape with
   request-dependent state half-applied — the transport turns escapes
   into 500s, but we catch first so the error body stays structured and
   the metrics error counter ticks. *)

module Obs = Ewalk_obs
module Json = Obs.Json
module Serve = Obs.Serve

let json_body ?(status = 200) j =
  Serve.respond ~status (Json.to_string j ^ "\n")

let error_response (e : Proto.error) =
  Serve.respond ~status:e.Proto.status (Proto.error_body e)

let of_result = function Ok r -> r | Error e -> error_response e

let ( let* ) = Result.bind

let step_result (s : Session.t) ~advanced =
  let sum = Session.summarize s in
  Json.Obj
    [
      ("id", Json.String (Session.id s));
      ("steps_advanced", Json.Int advanced);
      ("steps", Json.Int sum.Session.s_steps);
      ("position", Json.Int sum.Session.s_position);
      ("covered", Json.Bool sum.Session.s_covered);
      ("vertices_visited", Json.Int sum.Session.s_vertices);
      ("edges_visited", Json.Int sum.Session.s_edges);
    ]

let handle_step reg id body =
  of_result
    (let* j = Proto.parse_body body in
     let* req = Proto.step_request_of_json j in
     Registry.with_session reg id (fun s ~pool ->
         let before =
           (Session.summarize s).Session.s_steps
         in
         let* total =
           match req with
           | Proto.Steps k -> Session.step ?pool s k
           | Proto.To_cover cap -> Session.run_to_cover ?pool s ~cap
         in
         Registry.note_steps reg (total - before);
         Ok (json_body (step_result s ~advanced:(total - before)))))

(* The status line must be decided before streaming starts, so the trace
   route validates the session and the steps parameter up front and only
   then commits to a chunked response.  The stream itself runs under the
   registry lock (sessions cannot be evicted mid-stream). *)
let handle_trace reg id query =
  of_result
    (let* steps = Proto.steps_query query in
     let* () =
       match Registry.find reg id with
       | Some _ -> Ok ()
       | None -> Error (Proto.err 404 "unknown_session" ("no session " ^ id))
     in
     Ok
       (Serve.respond_stream ~content_type:"application/jsonl" (fun push ->
            let r =
              Registry.with_session reg id (fun s ~pool:_ ->
                  Session.stream s ~max_steps:steps ~push:(fun ev ->
                      push (Obs.Trace.event_to_string ev ^ "\n")))
            in
            match r with
            | Ok advanced -> Registry.note_steps reg advanced
            | Error e ->
                (* Headers are gone; surface the failure in-band. *)
                push (Proto.error_body e))))

let handle reg (rq : Serve.request) =
  let seg =
    match String.split_on_char '/' rq.Serve.rq_path with
    | "" :: rest -> List.filter (fun s -> s <> "") rest
    | rest -> rest
  in
  match (rq.Serve.rq_meth, seg) with
  | "GET", [ "healthz" ] ->
      Serve.respond ~content_type:"text/plain" "ok\n"
  | "GET", [ "metrics" ] ->
      Serve.respond
        ~content_type:
          "application/openmetrics-text; version=1.0.0; charset=utf-8"
        (Obs.Export.render (Registry.metrics reg))
  | "GET", [ "sessions" ] ->
      json_body
        (Json.Obj
           [
             ( "sessions",
               Json.List (List.map Session.info_json (Registry.list reg)) );
             ("resident", Json.Int (Registry.resident_count reg));
             ("resident_cap", Json.Int (Registry.resident_cap reg));
           ])
  | "POST", [ "sessions" ] ->
      of_result
        (let* j = Proto.parse_body rq.Serve.rq_body in
         let* cfg = Proto.config_of_json ~max_n:(Registry.max_n reg) j in
         let* s = Registry.create_session reg cfg in
         Ok (json_body ~status:201 (Session.info_json s)))
  | "GET", [ "sessions"; id ] -> (
      match Registry.find reg id with
      | Some s -> json_body (Session.info_json s)
      | None ->
          error_response (Proto.err 404 "unknown_session" ("no session " ^ id)))
  | "POST", [ "sessions"; id; "step" ] -> handle_step reg id rq.Serve.rq_body
  | "POST", [ "sessions"; id; "hibernate" ] ->
      of_result
        (let* () = Registry.hibernate reg id in
         Ok (json_body (Json.Obj [ ("id", Json.String id); ("hibernated", Json.Bool true) ])))
  | "GET", [ "sessions"; id; "trace" ] ->
      handle_trace reg id rq.Serve.rq_query
  | "DELETE", [ "sessions"; id ] ->
      if Registry.delete reg id then
        json_body (Json.Obj [ ("id", Json.String id); ("deleted", Json.Bool true) ])
      else
        error_response (Proto.err 404 "unknown_session" ("no session " ^ id))
  | _, ("healthz" :: _ | "metrics" :: _ | "sessions" :: _) ->
      error_response
        (Proto.err 405 "method_not_allowed"
           (rq.Serve.rq_meth ^ " not allowed on " ^ rq.Serve.rq_path))
  | _ ->
      error_response (Proto.err 404 "not_found" rq.Serve.rq_path)

let handler reg =
  let requests = Obs.Metrics.counter (Registry.metrics reg) "serve_requests" in
  let errors = Obs.Metrics.counter (Registry.metrics reg) "serve_errors" in
  fun rq ->
    Obs.Metrics.incr requests;
    match handle reg rq with
    | resp -> resp
    | exception e ->
        Obs.Metrics.incr errors;
        error_response (Proto.internal (Printexc.to_string e))
