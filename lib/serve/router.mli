(** HTTP dispatch for the session protocol.

    Routes ([:id] is a session id like [s000042]):

    - [GET /healthz] — liveness probe, ["ok"];
    - [GET /metrics] — the registry's daemon-wide counters as
      OpenMetrics text ({!Ewalk_obs.Export.render});
    - [GET /sessions] — session list with residency and the cap;
    - [POST /sessions] — create (body: the {!Proto.config} JSON), 201;
    - [GET /sessions/:id] — session info (rehydration {e not} forced);
    - [POST /sessions/:id/step] — advance (body:
      [{"steps":K}] or [{"until":"cover","cap":K?}]);
    - [POST /sessions/:id/hibernate] — force the session to disk;
    - [GET /sessions/:id/trace?steps=K] — chunked JSONL event stream
      (prologue, up to [K] steps, [run_end]);
    - [DELETE /sessions/:id] — remove the session and its state.

    Every failure is a structured JSON error; a handler exception is a
    500 and the daemon keeps serving.  [/quit] is handled by the
    transport ({!Ewalk_obs.Serve}). *)

val handler : Registry.t -> Ewalk_obs.Serve.request -> Ewalk_obs.Serve.response
