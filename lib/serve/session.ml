(* Session mechanics: walk construction, stepping, trace streaming, and
   the hibernate/rehydrate round trip.  The correctness contract is
   bit-identity: hibernating and rehydrating between any two operations
   must not change any subsequent state or event byte — Snapshot
   round-trips guarantee the walk state, and observers are attached only
   for the duration of a stream call, so the fast stepping paths stay
   observer-free (and competing rounds remain pool-shardable). *)

open Ewalk_graph
module Obs = Ewalk_obs
module Json = Obs.Json
module Rng = Ewalk_prng.Rng
module Kengine = Ewalk_kernel.Engine
module Snapshot = Ewalk_resume.Snapshot

type summary = {
  s_steps : int;
  s_position : int;
  s_covered : bool;
  s_vertices : int;
  s_edges : int;
}

type t = {
  sid : string;
  cfg : Proto.config;
  dir : string;
  mutable walk : Snapshot.walk option;
  mutable hsum : summary;  (* last known state; authoritative when hibernated *)
  mutable lru : int;
}

let id t = t.sid
let config t = t.cfg
let resident t = t.walk <> None
let last_used t = t.lru
let touch t ~tick = t.lru <- tick
let snapshot_path t = Filename.concat t.dir "snapshot.json"
let meta_path t = Filename.concat t.dir "session.json"

(* -- walk construction ----------------------------------------------------- *)

let kernel_proc_of_spec = function
  | "e-process" -> Some Kengine.E_uar
  | "e-process:lowest" -> Some Kengine.E_lowest
  | "e-process:highest" -> Some Kengine.E_highest
  | "srw" -> Some Kengine.Srw
  | "rotor" -> Some Kengine.Rotor
  | _ -> None

(* Mirrors eproc's make_snapshot_walk: start vertex 0, the rng already
   advanced past the graph build.  Proto validated the spec, so the
   final wildcard is unreachable for accepted configs. *)
let build_walk (c : Proto.config) g rng =
  if c.walkers > 1 || c.mode = Proto.Competing then
    match kernel_proc_of_spec c.process with
    | None -> Error (Proto.err 400 "unknown_process" c.process)
    | Some kp ->
        let mode =
          match c.mode with
          | Proto.Cooperating -> Kengine.Cooperating
          | Proto.Competing -> Kengine.Competing
        in
        Ok
          (Snapshot.Kernel
             (Kengine.create_spread ~mode kp g rng ~walkers:c.walkers))
  else
    let start = 0 in
    match c.process with
    | "e-process" -> Ok (Snapshot.Eprocess (Ewalk.Eprocess.create g rng ~start))
    | "e-process:lowest" ->
        Ok
          (Snapshot.Eprocess
             (Ewalk.Eprocess.create ~rule:Ewalk.Eprocess.Lowest_slot g rng
                ~start))
    | "e-process:highest" ->
        Ok
          (Snapshot.Eprocess
             (Ewalk.Eprocess.create ~rule:Ewalk.Eprocess.Highest_slot g rng
                ~start))
    | "srw" -> Ok (Snapshot.Srw (Ewalk.Srw.create g rng ~start))
    | "lazy-srw" -> Ok (Snapshot.Srw (Ewalk.Srw.create_lazy g rng ~start))
    | "rotor" ->
        Ok
          (Snapshot.Rotor
             (Ewalk.Rotor.create ~randomize_rotors:true g rng ~start))
    | other -> Error (Proto.err 400 "unknown_process" other)

let walk_graph = function
  | Snapshot.Eprocess p -> (Ewalk.Eprocess.process p).Ewalk.Cover.graph
  | Snapshot.Srw w -> (Ewalk.Srw.process w).Ewalk.Cover.graph
  | Snapshot.Rotor r -> (Ewalk.Rotor.process r).Ewalk.Cover.graph
  | Snapshot.Kernel k -> Kengine.graph k

let all_walkers_covered k =
  let w = Kengine.walkers k in
  let rec go i = i >= w || (Kengine.walker_cover_step k i <> None && go (i + 1)) in
  go 0

let walk_covered = function
  | Snapshot.Eprocess p ->
      Ewalk.Coverage.all_vertices_visited (Ewalk.Eprocess.coverage p)
  | Snapshot.Srw w ->
      Ewalk.Coverage.all_vertices_visited (Ewalk.Srw.coverage w)
  | Snapshot.Rotor r ->
      Ewalk.Coverage.all_vertices_visited (Ewalk.Rotor.coverage r)
  | Snapshot.Kernel k ->
      if Kengine.mode k = Kengine.Competing then all_walkers_covered k
      else Ewalk.Coverage.all_vertices_visited (Kengine.coverage k)

let summarize_walk w =
  let coverage_counts cov =
    (Ewalk.Coverage.vertices_visited cov, Ewalk.Coverage.edges_visited cov)
  in
  let s_vertices, s_edges =
    match w with
    | Snapshot.Eprocess p -> coverage_counts (Ewalk.Eprocess.coverage p)
    | Snapshot.Srw s -> coverage_counts (Ewalk.Srw.coverage s)
    | Snapshot.Rotor r -> coverage_counts (Ewalk.Rotor.coverage r)
    | Snapshot.Kernel k ->
        if Kengine.mode k = Kengine.Competing then begin
          (* Per-walker visited sets: report the furthest walker. *)
          let v = ref 0 and e = ref 0 in
          for i = 0 to Kengine.walkers k - 1 do
            v := max !v (Kengine.walker_vertices_visited k i);
            e := max !e (Kengine.walker_edges_visited k i)
          done;
          (!v, !e)
        end
        else coverage_counts (Kengine.coverage k)
  in
  {
    s_steps = Snapshot.walk_steps w;
    s_position = Snapshot.walk_position w;
    s_covered = walk_covered w;
    s_vertices;
    s_edges;
  }

let summarize t =
  match t.walk with Some w -> summarize_walk w | None -> t.hsum

(* -- meta file ------------------------------------------------------------- *)

let meta_schema = "eprocd-session/1"

let summary_to_json s =
  Json.Obj
    [
      ("steps", Json.Int s.s_steps);
      ("position", Json.Int s.s_position);
      ("covered", Json.Bool s.s_covered);
      ("vertices_visited", Json.Int s.s_vertices);
      ("edges_visited", Json.Int s.s_edges);
    ]

let summary_of_json j =
  match
    ( Option.bind (Json.member "steps" j) Json.to_int_opt,
      Option.bind (Json.member "position" j) Json.to_int_opt,
      Json.member "covered" j,
      Option.bind (Json.member "vertices_visited" j) Json.to_int_opt,
      Option.bind (Json.member "edges_visited" j) Json.to_int_opt )
  with
  | Some s_steps, Some s_position, Some covered, Some s_vertices, Some s_edges
    ->
      let s_covered = match covered with Json.Bool b -> b | _ -> false in
      Some { s_steps; s_position; s_covered; s_vertices; s_edges }
  | _ -> None

let write_meta t =
  let j =
    Json.Obj
      [
        ("schema", Json.String meta_schema);
        ("id", Json.String t.sid);
        ("config", Proto.config_to_json t.cfg);
        ("summary", summary_to_json (summarize t));
      ]
  in
  let tmp = meta_path t ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp (meta_path t)

let meta_of_json j =
  match Json.member "schema" j with
  | Some (Json.String s) when s = meta_schema -> (
      match (Json.member "config" j, Json.member "summary" j) with
      | Some cj, Some sj -> (
          (* Recovery re-validates against a generous bound; the daemon's
             own cap applied when the session was created. *)
          match
            (Proto.config_of_json ~max_n:max_int cj, summary_of_json sj)
          with
          | Ok c, Some s -> Some (c, s)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* -- lifecycle ------------------------------------------------------------- *)

let zero_summary = { s_steps = 0; s_position = 0; s_covered = false; s_vertices = 1; s_edges = 0 }

let create ~id ~dir ~graph ~rng cfg =
  match build_walk cfg graph rng with
  | Error e -> Error e
  | Ok w ->
      let t = { sid = id; cfg; dir; walk = Some w; hsum = zero_summary; lru = 0 } in
      (try write_meta t
       with Sys_error m -> prerr_endline ("eprocd: meta write failed: " ^ m));
      Ok t

let recover ~id ~dir cfg sum =
  { sid = id; cfg; dir; walk = None; hsum = sum; lru = 0 }

let hibernate t =
  match t.walk with
  | None -> Ok ()
  | Some w -> (
      t.hsum <- summarize_walk w;
      match Snapshot.write ~path:(snapshot_path t) w with
      | Error e ->
          Error (Proto.internal ("snapshot write: " ^ Snapshot.error_to_string e))
      | Ok () ->
          t.walk <- None;
          (try write_meta t
           with Sys_error m ->
             prerr_endline ("eprocd: meta write failed: " ^ m));
          Ok ())

let materialize t ~graph ~rng =
  match t.walk with
  | Some _ -> Ok ()
  | None ->
      if Sys.file_exists (snapshot_path t) then (
        match Snapshot.read graph ~path:(snapshot_path t) with
        | Error e ->
            Error
              (Proto.internal ("snapshot read: " ^ Snapshot.error_to_string e))
        | Ok w ->
            t.walk <- Some w;
            Ok ())
      else (
        (* Recovered session that never hibernated: its walk never left
           step 0, so rebuilding from the seed is exact. *)
        match build_walk t.cfg graph rng with
        | Error e -> Error e
        | Ok w ->
            t.walk <- Some w;
            Ok ())

let not_resident = Proto.internal "session not resident"

let with_walk t f =
  match t.walk with None -> Error not_resident | Some w -> f w

(* -- stepping -------------------------------------------------------------- *)

let step_one = function
  | Snapshot.Eprocess p -> Ewalk.Eprocess.step p
  | Snapshot.Srw s -> Ewalk.Srw.step s
  | Snapshot.Rotor r -> Ewalk.Rotor.step r
  | Snapshot.Kernel k -> Kengine.step k

let step ?pool t k =
  with_walk t @@ fun w ->
  (match w with
  | Snapshot.Eprocess p -> Ewalk.Eprocess.run_steps p k
  | Snapshot.Srw s -> Ewalk.Srw.run_steps s k
  | Snapshot.Rotor r -> for _ = 1 to k do Ewalk.Rotor.step r done
  | Snapshot.Kernel e ->
      let wk = Kengine.walkers e in
      if wk > 1 then begin
        (* Whole rounds take the engine's batched path (sharded across
           the pool in competing mode); the remainder steps stay on the
           same round-robin order, so the state sequence is identical to
           k single steps. *)
        let rounds = k / wk in
        if rounds > 0 then Kengine.run_rounds ?pool e rounds;
        for _ = 1 to k - (rounds * wk) do Kengine.step e done
      end
      else for _ = 1 to k do Kengine.step e done);
  Ok (Snapshot.walk_steps w)

let run_to_cover ?pool t ~cap =
  with_walk t @@ fun w ->
  let g = walk_graph w in
  let cap = match cap with Some c -> c | None -> Ewalk.Cover.default_cap g in
  (match w with
  | Snapshot.Eprocess p -> ignore (Ewalk.Eprocess.run_to_vertex_cover ~cap p)
  | Snapshot.Srw s -> ignore (Ewalk.Srw.run_to_vertex_cover ~cap s)
  | Snapshot.Rotor r ->
      let cov = Ewalk.Rotor.coverage r in
      while
        (not (Ewalk.Coverage.all_vertices_visited cov))
        && Ewalk.Rotor.steps r < cap
      do
        Ewalk.Rotor.step r
      done
  | Snapshot.Kernel e ->
      if Kengine.mode e = Kengine.Competing then
        ignore (Kengine.run_until_first_cover ?pool ~cap e)
      else
        let cov = Kengine.coverage e in
        while
          (not (Ewalk.Coverage.all_vertices_visited cov))
          && Kengine.steps e < cap
        do
          Kengine.step e
        done);
  Ok (Snapshot.walk_steps w)

(* -- trace streaming ------------------------------------------------------- *)

let set_observer w obs =
  match w with
  | Snapshot.Eprocess p -> Ewalk.Eprocess.set_observer p obs
  | Snapshot.Srw s -> Ewalk.Srw.set_observer s obs
  | Snapshot.Rotor r -> Ewalk.Rotor.set_observer r obs
  | Snapshot.Kernel k ->
      Kengine.set_observer k
        (Option.map (fun f -> fun ~walker:_ ev -> f ev) obs)

let stream t ~max_steps ~push =
  with_walk t @@ fun w ->
  let g = walk_graph w in
  let n = Graph.n g in
  let steps0 = Snapshot.walk_steps w in
  let start = Snapshot.walk_position w in
  (* Track exactly what a replay shadow of this stream sees, so the
     run_end covered flag can never contradict it: the start vertex plus
     every streamed step vertex. *)
  let seen = Bytes.make n '\000' in
  let seen_count = ref 0 in
  let mark v =
    if v >= 0 && v < n && Bytes.get seen v = '\000' then begin
      Bytes.set seen v '\001';
      incr seen_count
    end
  in
  push
    (Obs.Trace.Run_start
       { name = Snapshot.kind_name w; n; m = Graph.m g; start });
  (match Obs.Runlog.current () with
  | Some r ->
      push
        (Obs.Trace.Run_info
           {
             run_id = r.Obs.Runlog.run_id;
             parent_run_id = r.Obs.Runlog.parent_run_id;
           })
  | None -> ());
  if steps0 > 0 then push (Obs.Trace.Resume { step = steps0 });
  mark start;
  set_observer w
    (Some
       (fun ev ->
         (match ev with Obs.Trace.Step { vertex; _ } -> mark vertex | _ -> ());
         push ev));
  let stepped = ref 0 in
  Fun.protect
    ~finally:(fun () -> set_observer w None)
    (fun () ->
      while !stepped < max_steps && not (walk_covered w) do
        step_one w;
        incr stepped
      done);
  let tail_covered = !seen_count = n in
  (* A fresh stream's flag must equal the shadow's union verdict; a
     resumed stream may also assert true coverage the tail alone cannot
     show (the verifier only refutes false-with-covered-tail). *)
  let covered = tail_covered || (steps0 > 0 && walk_covered w) in
  push (Obs.Trace.Run_end { steps = Snapshot.walk_steps w; covered });
  Ok !stepped

(* -- info / delete --------------------------------------------------------- *)

let info_json t =
  let s = summarize t in
  Json.Obj
    [
      ("id", Json.String t.sid);
      ("config", Proto.config_to_json t.cfg);
      ("resident", Json.Bool (resident t));
      ("steps", Json.Int s.s_steps);
      ("position", Json.Int s.s_position);
      ("covered", Json.Bool s.s_covered);
      ("vertices_visited", Json.Int s.s_vertices);
      ("edges_visited", Json.Int s.s_edges);
    ]

let delete t =
  t.walk <- None;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ snapshot_path t; meta_path t; meta_path t ^ ".tmp" ];
  try Unix.rmdir t.dir with Unix.Unix_error _ -> ()
