(** One walk session: a snapshottable walk plus the machinery to step it,
    stream its trace, and hibernate/rehydrate it bit-identically.

    A session is {e resident} (the walk is live in memory) or
    {e hibernated} (its full state sits in a CRC-guarded
    {!Ewalk_resume.Snapshot} under the session's state directory, plus a
    cached summary for cheap inspection).  The {!Registry} owns the
    resident/hibernated policy; this module owns the mechanics — and the
    invariant the qcheck battery enforces: any interleaving of
    [step]/[hibernate]/[rehydrate]/[stream] produces states and event
    streams bit-identical to a session that never hibernated.

    Trace streams are self-verifying: each [stream] call emits a full
    prologue ([run_start], [run_info] when a {!Ewalk_obs.Runlog} run is
    ambient, and [resume] when the walk is already underway) and a
    [run_end], so a recorded stream from a single-walker session is
    accepted by [eproc verify-trace] against the same
    family/n/seed graph. *)

type t

type summary = {
  s_steps : int;
  s_position : int;
  s_covered : bool;
  s_vertices : int;  (** distinct vertices visited (competing: best walker) *)
  s_edges : int;  (** distinct edges visited (competing: best walker) *)
}

val create :
  id:string ->
  dir:string ->
  graph:Ewalk_graph.Graph.t ->
  rng:Ewalk_prng.Rng.t ->
  Proto.config ->
  (t, Proto.error) result
(** Build a fresh resident session.  [rng] must be the PRNG advanced past
    the graph build for this config's seed — the same discipline as
    [eproc trace], so recorded streams verify.  Writes the session's
    meta file under [dir]. *)

val recover : id:string -> dir:string -> Proto.config -> summary -> t
(** Re-adopt a session found on disk at daemon restart: hibernated (or
    never-stepped) until the first request materializes it. *)

val id : t -> string
val config : t -> Proto.config
val resident : t -> bool
val last_used : t -> int
val touch : t -> tick:int -> unit

val summarize : t -> summary
(** Current state: live counters when resident, the cached hibernation
    summary otherwise. *)

val info_json : t -> Ewalk_obs.Json.t

val hibernate : t -> (unit, Proto.error) result
(** Snapshot the walk to disk, update the meta file's summary, drop the
    resident state.  No-op when already hibernated. *)

val materialize :
  t ->
  graph:Ewalk_graph.Graph.t ->
  rng:Ewalk_prng.Rng.t ->
  (unit, Proto.error) result
(** Make the session resident: restore the snapshot recorded on [graph],
    or — when no snapshot exists (a recovered session that never
    hibernated) — rebuild the fresh walk from [rng] exactly as {!create}
    did.  No-op when already resident. *)

val step : ?pool:Ewalk_par.Pool.t -> t -> int -> (int, Proto.error) result
(** Advance exactly [k] steps (multi-walker sessions batch whole rounds
    through the engine, competing rounds shard across [pool]).  Returns
    the session's total step count.  Requires residency. *)

val run_to_cover :
  ?pool:Ewalk_par.Pool.t -> t -> cap:int option -> (int, Proto.error) result
(** Run to the cover milestone: full coverage for cooperating sessions,
    first walker-local cover for competing ones — or until the cap
    (default {!Ewalk.Cover.default_cap}).  Returns the total step
    count. *)

val stream :
  t ->
  max_steps:int ->
  push:(Ewalk_obs.Trace.event -> unit) ->
  (int, Proto.error) result
(** Emit the prologue, advance up to [max_steps] steps (stopping early at
    the cover milestone) pushing every native trace event, then emit
    [run_end].  Returns the number of steps advanced.  The [run_end]
    covered flag is exactly what a replay shadow of this stream computes,
    so recorded streams verify.  Requires residency. *)

val delete : t -> unit
(** Remove the session's on-disk state (snapshot + meta + directory). *)

val snapshot_path : t -> string
val meta_of_json : Ewalk_obs.Json.t -> (Proto.config * summary) option
(** Parse a session meta file ([eprocd-session/1]). *)
