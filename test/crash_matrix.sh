#!/usr/bin/env bash
# Crash-equivalence matrix for checkpoint/resume (make test-crash).
#
# Campaign half: run the fig1 sweep under EWALK_FAULT_SPEC=kill-trial:K for
# every checkpoint boundary K (every journaled trial), resume each killed
# campaign, and require the resumed CSV to be byte-identical to an
# undisturbed run — at --jobs 1 and --jobs 4.  Every kill runs with the
# flight recorder armed (EWALK_FLIGHT_DIR): each kill-point must leave a
# flight.jsonl post-mortem that `eproc verify-trace --flight` accepts, and
# a cleanly completed run must leave none.
#
# Trace half: checkpoint a single walk, cut it off mid-run, resume from the
# snapshot, and require (a) verify-trace to accept both streams and (b) the
# resumed tail to be byte-identical to the corresponding tail of the
# uninterrupted stream.  Corrupted snapshots must be rejected with exit 2.
#
# Kernel half: the same kill-and-resume discipline for a W=4 lockstep run —
# cut at every checkpoint boundary, resume, and require the resumed step
# stream to be byte-identical to the uninterrupted run's tail.
#
# Competing half: the same matrix for a W=4 competing run (per-walker
# bit-packed visited sets, "kernel-competing" snapshots), with one extra
# assertion per boundary: checkpoint-inspect must report the stored
# per-walker visit counters verified against the serialized bitsets'
# popcounts (the counter==popcount verdict) before the leg is resumed.
#
# Daemon half: SIGKILL an eprocd holding live and hibernated sessions,
# restart it over the same state directory, and require every session
# whose state reached disk to come back at its last durable step count
# and continue bit-identically to an uninterrupted daemon.
set -u

EPROC=${EPROC:-_build/default/bin/eproc.exe}
EPROCD=${EPROCD:-_build/default/bin/eprocd.exe}
KILL_EXIT=70

if [ ! -x "$EPROC" ]; then
  echo "crash_matrix: $EPROC not built (run dune build first)" >&2
  exit 2
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# note/fail/check/finish plus the daemon scrape/readiness/quit helpers
# come from the shared smoke-script library.
SMOKE_NAME=crash_matrix
. "$(dirname "$0")/serve_lib.sh"

expect_exit() {
  # expect_exit WANT DESC CMD...
  local want=$1 desc=$2 got
  shift 2
  check
  "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    fail "$desc: expected exit $want, got $got"
  fi
}

# --- campaign crash matrix --------------------------------------------------

EXP=fig1 SCALE=tiny SEED=1

note "baseline $EXP --scale $SCALE --seed $SEED"
"$EPROC" experiment $EXP --scale $SCALE --seed $SEED --jobs 1 \
  --csv "$work/base.csv" >/dev/null 2>&1 \
  || { echo "crash_matrix: baseline run failed" >&2; exit 2; }

env EWALK_FLIGHT_DIR="$work/probe-flight" \
  "$EPROC" experiment $EXP --scale $SCALE --seed $SEED --jobs 1 \
  --checkpoint-dir "$work/probe" >/dev/null 2>&1 \
  || { echo "crash_matrix: probe run failed" >&2; exit 2; }
check
[ ! -e "$work/probe-flight/flight.jsonl" ] \
  || fail "cleanly completed run left a flight dump"
K=$(wc -l < "$work/probe/trials.jsonl")
note "campaign journals $K trials; killing at every boundary x jobs {1,4}"

# Verify a flight dump against a graph reconstructed from its own
# run_start stamp (only n and m must match; a d-regular graph with the
# dump's n and m is d = 2m/n).
verify_flight() {
  # verify_flight DESC FILE
  local desc=$1 file=$2 n m
  check
  if [ ! -s "$file" ]; then
    fail "$desc: no flight dump at $file"
    return
  fi
  n=$(grep -o '"n":[0-9]*' "$file" | head -1 | cut -d: -f2)
  m=$(grep -o '"m":[0-9]*' "$file" | head -1 | cut -d: -f2)
  if [ -z "$n" ] || [ -z "$m" ] || [ $((2 * m % n)) -ne 0 ]; then
    fail "$desc: dump has no usable run_start (n=$n m=$m)"
    return
  fi
  "$EPROC" verify-trace --family regular:$((2 * m / n)) -n "$n" --seed 1 \
    --flight "$file" >/dev/null 2>&1 \
    || fail "$desc: verify-trace --flight rejected the dump"
}

for jobs in 1 4; do
  k=1
  while [ "$k" -le "$K" ]; do
    dir=$work/kill-$jobs-$k
    expect_exit $KILL_EXIT "kill-trial:$k --jobs $jobs dies at boundary" \
      env EWALK_FAULT_SPEC=kill-trial:$k EWALK_FLIGHT_DIR="$dir/flight" \
      EWALK_RUNS_DIR="$dir/runs" \
      "$EPROC" experiment $EXP --scale $SCALE --seed $SEED --jobs $jobs \
      --checkpoint-dir "$dir"
    verify_flight "kill-trial:$k --jobs $jobs post-mortem" \
      "$dir/flight/flight.jsonl"
    # The journal must hold exactly the k trials that completed.
    check
    lines=$(wc -l < "$dir/trials.jsonl" 2>/dev/null || echo 0)
    [ "$lines" -eq "$k" ] \
      || fail "kill-trial:$k --jobs $jobs journaled $lines trials, wanted $k"
    # The killed leg's run_id must be stamped consistently into the
    # manifest, the flight-recorder dump, and every journal row it wrote.
    mrun=$(grep -o '"run_id":"r[0-9a-f]\{16\}"' "$dir/campaign.json" \
      | head -1 | cut -d'"' -f4)
    check
    [ -n "$mrun" ] || fail "kill-trial:$k --jobs $jobs manifest has no run_id"
    check
    grep -q "\"run_id\":\"$mrun\"" "$dir/flight/flight.jsonl" \
      || fail "kill-trial:$k --jobs $jobs flight dump not stamped with $mrun"
    check
    [ "$(grep -c "\"run_id\":\"$mrun\"" "$dir/trials.jsonl")" -eq "$k" ] \
      || fail "kill-trial:$k --jobs $jobs journal rows not stamped with $mrun"
    expect_exit 0 "resume after kill-trial:$k --jobs $jobs" \
      env EWALK_RUNS_DIR="$dir/runs" \
      "$EPROC" experiment $EXP --scale $SCALE --seed $SEED --jobs $jobs \
      --checkpoint-dir "$dir" --resume --csv "$dir/out.csv"
    check
    cmp -s "$work/base.csv" "$dir/out.csv" \
      || fail "resumed CSV differs from baseline (kill-trial:$k --jobs $jobs)"
    # The resume leg must mint a child run whose parent is the killed
    # leg, stamp the rows it replays-and-extends with its own id, and
    # `eproc runs show` must reassemble the chain.
    rrun=$(grep -l "\"parent_run_id\":\"$mrun\"" "$dir"/runs/*/meta.json \
      2>/dev/null | head -1)
    rrun=${rrun:+$(basename "$(dirname "$rrun")")}
    check
    if [ -z "$rrun" ] || [ "$rrun" = "$mrun" ]; then
      fail "resume after kill-trial:$k --jobs $jobs minted no child of $mrun"
    else
      check
      [ "$(grep -c "\"run_id\":\"$rrun\"" "$dir/trials.jsonl")" \
        -eq $((K - k)) ] \
        || fail "resumed journal rows not stamped with child run $rrun"
      check
      env EWALK_RUNS_DIR="$dir/runs" "$EPROC" runs show "$rrun" \
        > "$work/show.txt" 2>&1 \
        && grep -q "$mrun" "$work/show.txt" \
        || fail "eproc runs show $rrun does not reassemble the chain to $mrun"
    fi
    rm -rf "$dir"
    k=$((k + 1))
  done
done

# Resuming with a mismatched manifest must be refused.
expect_exit 2 "resume with mismatched seed refused" \
  "$EPROC" experiment $EXP --scale $SCALE --seed 99 --jobs 1 \
  --checkpoint-dir "$work/probe" --resume

# --- trace checkpoint/resume ------------------------------------------------

G="--family regular:4 -n 64 --seed 3"   # graph identity (shared with verify)
TR="$G --process e-process"             # the traced walk
CUT=100      # steps before the simulated crash
EVERY=50     # checkpoint spacing; CUT is a boundary

note "trace checkpoint/resume on $TR"
check
"$EPROC" trace $TR --out "$work/full.jsonl" >/dev/null 2>&1 \
  || fail "uninterrupted trace run failed"
check
env EWALK_RUNS_DIR="$work/truns" \
  "$EPROC" trace $TR --checkpoint "$work/snap" --checkpoint-every $EVERY \
  --max-steps $CUT --out "$work/head.jsonl" >/dev/null 2>&1 \
  || fail "checkpointed head run failed"
check
[ -f "$work/snap" ] || fail "no snapshot written at the $CUT-step boundary"
check
env EWALK_RUNS_DIR="$work/truns" \
  "$EPROC" trace $TR --resume-from "$work/snap" --out "$work/tail.jsonl" \
  >/dev/null 2>&1 || fail "resume from snapshot failed"

# Run provenance across the cut: the head's prologue run_info, the
# snapshot header, and the resumed tail must chain parent -> child.
hrun=$(grep -o '"run_id":"r[0-9a-f]\{16\}"' "$work/head.jsonl" \
  | head -1 | cut -d'"' -f4)
check
[ -n "$hrun" ] || fail "checkpointed head has no run_info prologue"
check
"$EPROC" checkpoint-inspect "$work/snap" | grep -q "run $hrun" \
  || fail "snapshot header run_id differs from head prologue ($hrun)"
trun=$(grep -o '"run_id":"r[0-9a-f]\{16\}"' "$work/tail.jsonl" \
  | head -1 | cut -d'"' -f4)
check
if [ -z "$trun" ] || [ "$trun" = "$hrun" ]; then
  fail "resumed tail did not mint a fresh run id (got '$trun')"
else
  check
  grep -q "\"parent_run_id\":\"$hrun\"" "$work/tail.jsonl" \
    || fail "resumed tail prologue does not name $hrun as parent"
  check
  env EWALK_RUNS_DIR="$work/truns" "$EPROC" runs show "$trun" \
    > "$work/tshow.txt" 2>&1 \
    && grep -q "$hrun" "$work/tshow.txt" \
    || fail "eproc runs show $trun does not reassemble the chain to $hrun"
fi

# The resumed stream's step events must be byte-identical to the same tail
# of the uninterrupted stream (crash equivalence).
check
grep '"type":"step"' "$work/full.jsonl" | tail -n +$((CUT + 1)) \
  > "$work/full-tail.steps"
grep '"type":"step"' "$work/tail.jsonl" > "$work/resumed.steps"
cmp -s "$work/full-tail.steps" "$work/resumed.steps" \
  || fail "resumed step stream differs from the uninterrupted tail"

expect_exit 0 "verify-trace accepts the uninterrupted stream" \
  "$EPROC" verify-trace $G "$work/full.jsonl"
expect_exit 0 "verify-trace accepts the checkpointed head" \
  "$EPROC" verify-trace $G "$work/head.jsonl"
expect_exit 0 "verify-trace accepts the resumed tail" \
  "$EPROC" verify-trace $G "$work/tail.jsonl"

expect_exit 0 "checkpoint-inspect reads a healthy snapshot" \
  "$EPROC" checkpoint-inspect "$work/snap"
expect_exit 0 "checkpoint-inspect reads a campaign directory" \
  "$EPROC" checkpoint-inspect "$work/probe"

# --- kernel campaign: W=4 lockstep kill-and-resume --------------------------
# (No verify-trace here: a multi-walker stream interleaves four walks and
# is not a single-walk trace; byte equality against the uninterrupted run
# is the correctness criterion.)

KTR="$G --process e-process --walkers 4"
KEVERY=50

note "kernel trace checkpoint/resume on $KTR"
check
"$EPROC" trace $KTR --out "$work/kfull.jsonl" >/dev/null 2>&1 \
  || fail "uninterrupted kernel trace run failed"
KSTEPS=$(grep -c '"type":"step"' "$work/kfull.jsonl")
note "kernel run covers in $KSTEPS walker-steps; killing at every ${KEVERY}-step boundary"

kcut=$KEVERY
while [ "$kcut" -lt "$KSTEPS" ]; do
  check
  "$EPROC" trace $KTR --checkpoint "$work/ksnap" --checkpoint-every $KEVERY \
    --max-steps "$kcut" --out "$work/khead.jsonl" >/dev/null 2>&1 \
    || fail "kernel head run to step $kcut failed"
  check
  [ -f "$work/ksnap" ] || fail "no kernel snapshot at the $kcut-step boundary"
  check
  "$EPROC" trace $KTR --resume-from "$work/ksnap" --out "$work/ktail.jsonl" \
    >/dev/null 2>&1 || fail "kernel resume from step $kcut failed"
  check
  grep '"type":"step"' "$work/kfull.jsonl" | tail -n +$((kcut + 1)) \
    > "$work/kfull-tail.steps"
  grep '"type":"step"' "$work/ktail.jsonl" > "$work/kresumed.steps"
  cmp -s "$work/kfull-tail.steps" "$work/kresumed.steps" \
    || fail "kernel resumed stream differs from the uninterrupted tail (cut $kcut)"
  kcut=$((kcut + KEVERY))
done

expect_exit 0 "checkpoint-inspect reads a kernel snapshot" \
  "$EPROC" checkpoint-inspect "$work/ksnap"

# --- competing kernel: private bit-packed sets, kill-and-resume -------------
# Same discipline as above, on "kernel-competing" snapshots (per-walker
# bitsets serialized as hex).  At every resume leg the snapshot must pass
# checkpoint-inspect's recount: stored visit counters cross-checked
# against the bitset popcounts, reported as counter==popcount.

CTR="$G --process e-process --walkers 4 --compete"
CEVERY=50

note "competing trace checkpoint/resume on $CTR"
check
"$EPROC" trace $CTR --out "$work/cfull.jsonl" >/dev/null 2>&1 \
  || fail "uninterrupted competing trace run failed"
CSTEPS=$(grep -c '"type":"step"' "$work/cfull.jsonl")
note "competing run finishes in $CSTEPS walker-steps; killing at every ${CEVERY}-step boundary"

ccut=$CEVERY
while [ "$ccut" -lt "$CSTEPS" ]; do
  check
  "$EPROC" trace $CTR --checkpoint "$work/csnap" --checkpoint-every $CEVERY \
    --max-steps "$ccut" --out "$work/chead.jsonl" >/dev/null 2>&1 \
    || fail "competing head run to step $ccut failed"
  check
  [ -f "$work/csnap" ] \
    || fail "no competing snapshot at the $ccut-step boundary"
  check
  "$EPROC" checkpoint-inspect "$work/csnap" | grep -q 'counter==popcount' \
    || fail "competing snapshot at $ccut lacks the counter==popcount verdict"
  check
  "$EPROC" trace $CTR --resume-from "$work/csnap" --out "$work/ctail.jsonl" \
    >/dev/null 2>&1 || fail "competing resume from step $ccut failed"
  check
  grep '"type":"step"' "$work/cfull.jsonl" | tail -n +$((ccut + 1)) \
    > "$work/cfull-tail.steps"
  grep '"type":"step"' "$work/ctail.jsonl" > "$work/cresumed.steps"
  cmp -s "$work/cfull-tail.steps" "$work/cresumed.steps" \
    || fail "competing resumed stream differs from the uninterrupted tail (cut $ccut)"
  ccut=$((ccut + CEVERY))
done

expect_exit 0 "checkpoint-inspect reads a competing snapshot" \
  "$EPROC" checkpoint-inspect "$work/csnap"

csize=$(wc -c < "$work/csnap")
head -c $((csize - 10)) "$work/csnap" > "$work/csnap.trunc"
expect_exit 2 "truncated competing snapshot rejected by checkpoint-inspect" \
  "$EPROC" checkpoint-inspect "$work/csnap.trunc"
expect_exit 2 "truncated competing snapshot rejected by --resume-from" \
  "$EPROC" trace $CTR --resume-from "$work/csnap.trunc" --out /dev/null

ksize=$(wc -c < "$work/ksnap")
head -c $((ksize - 10)) "$work/ksnap" > "$work/ksnap.trunc"
expect_exit 2 "truncated kernel snapshot rejected by checkpoint-inspect" \
  "$EPROC" checkpoint-inspect "$work/ksnap.trunc"
expect_exit 2 "truncated kernel snapshot rejected by --resume-from" \
  "$EPROC" trace $KTR --resume-from "$work/ksnap.trunc" --out /dev/null

# --- corrupted snapshots are rejected, never half-loaded --------------------

size=$(wc -c < "$work/snap")
head -c $((size - 10)) "$work/snap" > "$work/snap.trunc"
expect_exit 2 "truncated snapshot rejected by checkpoint-inspect" \
  "$EPROC" checkpoint-inspect "$work/snap.trunc"
expect_exit 2 "truncated snapshot rejected by --resume-from" \
  "$EPROC" trace $TR --resume-from "$work/snap.trunc" --out /dev/null

# Flip one payload byte: the CRC must catch it.
cp "$work/snap" "$work/snap.flip"
orig=$(dd if="$work/snap.flip" bs=1 skip=$((size - 10)) count=1 2>/dev/null)
sub=Z; [ "$orig" = "Z" ] && sub=Q
printf '%s' "$sub" | dd of="$work/snap.flip" bs=1 seek=$((size - 10)) \
  conv=notrunc 2>/dev/null
expect_exit 2 "bit-flipped snapshot rejected by checkpoint-inspect" \
  "$EPROC" checkpoint-inspect "$work/snap.flip"
expect_exit 2 "bit-flipped snapshot rejected by --resume-from" \
  "$EPROC" trace $TR --resume-from "$work/snap.flip" --out /dev/null

expect_exit 2 "missing snapshot rejected" \
  "$EPROC" checkpoint-inspect "$work/no-such-snapshot"

# --- eprocd: kill the daemon mid-session, restart, recover ------------------
# Sessions live in a state directory: hibernated state (snapshot + meta)
# is durable, purely in-memory progress is not.  A SIGKILLed daemon must
# restart over the same directory with every durable session intact, and
# a recovered session must continue exactly like one on a daemon that
# was never killed.

if [ ! -x "$EPROCD" ]; then
  check
  fail "$EPROCD not built (run dune build first)"
  finish
fi

SG="--family regular:4 -n 64 --seed 3"

start_eprocd() {
  # start_eprocd STATE_DIR ERRLOG — announce pid in dpid, url in durl.
  "$EPROCD" --port 0 --state-dir "$1" --resident-cap 8 \
    >/dev/null 2>"$2" &
  dpid=$!
  durl=$(scrape_url "$2" "$dpid")
  check
  if [ -z "$durl" ]; then
    fail "eprocd ($1): no listen announcement"
    return 1
  fi
  check
  wait_healthz "$durl" "$dpid" || fail "eprocd ($1): /healthz never answered"
}

start_eprocd "$work/dstate" "$work/d1.err" || finish

# s000001: stepped to 40, hibernated (durable at 40), then stepped 15
# more in memory only — the post-kill truth is 40.
check
s1=$(curl -sf -X POST \
  --data '{"family":"regular:4","n":64,"seed":3}' "$durl/sessions" \
  | json_field id)
[ -n "$s1" ] || fail "daemon create s1 failed"
check
got=$(curl -sf -X POST --data '{"steps":40}' "$durl/sessions/$s1/step" \
  | json_int steps)
[ "$got" = "40" ] || fail "s1 stepped to '$got', wanted 40"
check
curl -sf -X POST "$durl/sessions/$s1/hibernate" >/dev/null \
  || fail "s1 hibernate failed"
check
got=$(curl -sf -X POST --data '{"steps":15}' "$durl/sessions/$s1/step" \
  | json_int steps)
[ "$got" = "55" ] || fail "s1 re-stepped to '$got', wanted 55"

# s000002: created but never hibernated — recovers at step 0.
check
s2=$(curl -sf -X POST \
  --data '{"family":"regular:4","n":64,"seed":4}' "$durl/sessions" \
  | json_field id)
[ -n "$s2" ] || fail "daemon create s2 failed"
check
got=$(curl -sf -X POST --data '{"steps":10}' "$durl/sessions/$s2/step" \
  | json_int steps)
[ "$got" = "10" ] || fail "s2 stepped to '$got', wanted 10"

kill -9 "$dpid" 2>/dev/null
wait "$dpid" 2>/dev/null
note "killed eprocd mid-session; restarting over $work/dstate"

start_eprocd "$work/dstate" "$work/d2.err" || finish
pid2=$dpid

check
got=$(curl -sf "$durl/sessions/$s1" | json_int steps)
[ "$got" = "40" ] || fail "recovered s1 reports '$got' steps, wanted 40 \
(the last hibernated state)"
check
got=$(curl -sf "$durl/sessions/$s2" | json_int steps)
[ "$got" = "0" ] || fail "recovered s2 reports '$got' steps, wanted 0 \
(never hibernated)"

# The recovered session continues from its snapshot and its stream still
# verifies.
check
got=$(curl -sf -X POST --data '{"steps":20}' "$durl/sessions/$s1/step" \
  | json_int steps)
[ "$got" = "60" ] || fail "recovered s1 stepped to '$got', wanted 60"
check
curl -sf --max-time 10 "$durl/sessions/$s1/trace?steps=5000" \
  >"$work/recovered.jsonl" || fail "recovered trace stream failed"
expect_exit 0 "verify-trace accepts the recovered session's stream" \
  "$EPROC" verify-trace $SG "$work/recovered.jsonl"

# Bit-identity: an uninterrupted daemon driving the same config to the
# same step count emits the same stream (run_info carries the daemon's
# own run id, so provenance lines are excluded from the comparison).
start_eprocd "$work/dtwin" "$work/d3.err" || finish

check
t1=$(curl -sf -X POST \
  --data '{"family":"regular:4","n":64,"seed":3}' "$durl/sessions" \
  | json_field id)
[ -n "$t1" ] || fail "twin create failed"
check
got=$(curl -sf -X POST --data '{"steps":60}' "$durl/sessions/$t1/step" \
  | json_int steps)
[ "$got" = "60" ] || fail "twin stepped to '$got', wanted 60"
check
curl -sf --max-time 10 "$durl/sessions/$t1/trace?steps=5000" \
  >"$work/twin.jsonl" || fail "twin trace stream failed"

check
grep -v '"type":"run_info"' "$work/recovered.jsonl" >"$work/recovered.cmp"
grep -v '"type":"run_info"' "$work/twin.jsonl" >"$work/twin.cmp"
cmp -s "$work/recovered.cmp" "$work/twin.cmp" \
  || fail "recovered session's stream differs from the uninterrupted twin's"

check
quit_bye "$durl" || fail "twin daemon /quit did not answer 'bye'"
wait "$dpid" 2>/dev/null
check
kill -0 "$pid2" 2>/dev/null && {
  durl2=$(scrape_url "$work/d2.err" "$pid2")
  quit_bye "$durl2" || fail "restarted daemon /quit did not answer 'bye'"
}
wait "$pid2" 2>/dev/null

# ----------------------------------------------------------------------------

finish
