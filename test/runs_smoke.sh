#!/usr/bin/env bash
# Run-store smoke test (make runs-smoke).
#
# Exercise `eproc runs list/show/compare` over a real run store: mint runs
# with pinned epochs (deterministic ids), build a parent->child resume
# chain via trace checkpoint/resume, record two throughput series with
# short cover runs, and check the browsing commands render ids, chains,
# and median/MAD deltas — without the browsing itself polluting the store.
set -u

EPROC=${EPROC:-_build/default/bin/eproc.exe}

if [ ! -x "$EPROC" ]; then
  echo "runs_smoke: $EPROC not built (run dune build first)" >&2
  exit 2
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
runs=$work/runs

fails=0
checks=0
note() { printf 'runs_smoke: %s\n' "$*"; }
fail() {
  printf 'runs_smoke: FAIL: %s\n' "$*" >&2
  fails=$((fails + 1))
}
check() { checks=$((checks + 1)); }

meta_count() { ls -d "$runs"/r*/ 2>/dev/null | wc -l; }

# --- deterministic ids ------------------------------------------------------
# Same config + same pinned epoch must derive the same run id; a different
# epoch must derive a different one.

G="--family regular:4 -n 16 --seed 1"
env EWALK_RUNS_DIR="$runs" EWALK_RUN_EPOCH=1111 \
  "$EPROC" graph-info $G >/dev/null 2>&1
check
[ "$(meta_count)" -eq 1 ] || fail "first run minted $(meta_count) metas, wanted 1"
id1=$(basename "$(ls -d "$runs"/r*/ | head -1)")
check
case $id1 in r[0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f][0-9a-f]) : ;;
  *) fail "run id '$id1' is not r + 16 hex digits" ;;
esac

env EWALK_RUNS_DIR="$runs" EWALK_RUN_EPOCH=1111 \
  "$EPROC" graph-info $G >/dev/null 2>&1
check
[ "$(meta_count)" -eq 1 ] \
  || fail "re-running with the same epoch+config minted a second id"

env EWALK_RUNS_DIR="$runs" EWALK_RUN_EPOCH=2222 \
  "$EPROC" graph-info $G >/dev/null 2>&1
check
[ "$(meta_count)" -eq 2 ] \
  || fail "a different epoch did not mint a distinct id"

# --- resume chain -----------------------------------------------------------
# A trace checkpoint/resume pair must appear as a parent->child chain.

TR="--family regular:4 -n 64 --seed 3 --process e-process"
check
env EWALK_RUNS_DIR="$runs" \
  "$EPROC" trace $TR --checkpoint "$work/snap" --checkpoint-every 50 \
  --max-steps 100 --out "$work/head.jsonl" >/dev/null 2>&1 \
  || fail "checkpointed trace head failed"
check
env EWALK_RUNS_DIR="$runs" \
  "$EPROC" trace $TR --resume-from "$work/snap" --out "$work/tail.jsonl" \
  >/dev/null 2>&1 || fail "trace resume failed"

hrun=$(grep -o '"run_id":"r[0-9a-f]\{16\}"' "$work/head.jsonl" \
  | head -1 | cut -d'"' -f4)
trun=$(grep -o '"run_id":"r[0-9a-f]\{16\}"' "$work/tail.jsonl" \
  | head -1 | cut -d'"' -f4)
check
{ [ -n "$hrun" ] && [ -n "$trun" ] && [ "$hrun" != "$trun" ]; } \
  || fail "trace legs did not mint distinct run ids ($hrun / $trun)"

check
env EWALK_RUNS_DIR="$runs" "$EPROC" runs list > "$work/list.txt" 2>&1 \
  || fail "eproc runs list failed"
check
grep -q "^$trun  *$hrun " "$work/list.txt" \
  || fail "runs list does not show $trun with parent $hrun"

check
env EWALK_RUNS_DIR="$runs" "$EPROC" runs show "$trun" \
  > "$work/show.txt" 2>&1 || fail "eproc runs show $trun failed"
check
grep -q "^parent    $hrun" "$work/show.txt" \
  || fail "runs show does not name $hrun as parent"
check
grep -q "resume chain" "$work/show.txt" \
  && grep -q "$trun <- this run" "$work/show.txt" \
  || fail "runs show does not reassemble the resume chain"

# Browsing must not pollute the store, and unknown ids must be refused.
before=$(meta_count)
env EWALK_RUNS_DIR="$runs" "$EPROC" runs list >/dev/null 2>&1
check
[ "$(meta_count)" -eq "$before" ] \
  || fail "eproc runs list added entries to the store it was browsing"
check
if env EWALK_RUNS_DIR="$runs" "$EPROC" runs show rdeadbeefdeadbeef \
  >/dev/null 2>&1; then
  fail "runs show accepted an unknown run id"
fi

# --- throughput series and compare ------------------------------------------
# Two cover runs long enough for the sampler to spill a series; compare
# must report medians, MADs, and a delta verdict.

note "recording two throughput series (takes a few seconds)"
ida= idb=
for tag in a b; do
  before=$(meta_count)
  check
  env EWALK_RUNS_DIR="$runs" "$EPROC" cover --family regular:4 -n 200000 \
    --trials 2 --seed 1 --jobs 1 --metrics "$work/m-$tag.json" \
    >/dev/null 2>&1 \
    || fail "cover run $tag failed"
  new=$(ls -dt "$runs"/r*/ | head -1)
  eval "id$tag=\$(basename \"\$new\")"
done
check
{ [ -s "$runs/$ida/throughput.jsonl" ] && \
  [ -s "$runs/$idb/throughput.jsonl" ]; } \
  || fail "cover runs spilled no throughput series"

check
env EWALK_RUNS_DIR="$runs" "$EPROC" runs compare "$ida" "$idb" \
  > "$work/cmp.txt" 2>&1 || fail "eproc runs compare failed"
check
grep -q "median" "$work/cmp.txt" && grep -Eq "delta .*steps/s" "$work/cmp.txt" \
  || fail "runs compare printed no median/delta: $(cat "$work/cmp.txt")"
check
grep -Eq "within noise|faster|slower" "$work/cmp.txt" \
  || fail "runs compare printed no verdict"

# A run with no throughput series must be refused by compare, not crashed.
check
if env EWALK_RUNS_DIR="$runs" "$EPROC" runs compare "$id1" "$ida" \
  >/dev/null 2>&1; then
  fail "runs compare accepted a run with no throughput series"
fi

# runs show on a throughput-bearing run summarizes the series.
check
env EWALK_RUNS_DIR="$runs" "$EPROC" runs show "$ida" > "$work/showa.txt" 2>&1 \
  && grep -q "throughput: .* samples, median" "$work/showa.txt" \
  || fail "runs show does not summarize the throughput series"

# ----------------------------------------------------------------------------

if [ "$fails" -eq 0 ]; then
  note "OK ($checks checks)"
  exit 0
else
  note "$fails of $checks checks FAILED"
  exit 1
fi
