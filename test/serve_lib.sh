# Shared helpers for the serve smoke scripts (serve_smoke.sh,
# serve_session_smoke.sh, and the daemon section of crash_matrix.sh).
#
# Source with SMOKE_NAME set:
#
#   SMOKE_NAME=serve_smoke
#   . "$(dirname "$0")/serve_lib.sh"
#
# Provides the note/fail/check/finish accounting quartet, ephemeral-port
# scraping from a server's stderr announcement, a bounded /healthz
# readiness poll, and the /quit-answers-"bye" contract check.

: "${SMOKE_NAME:?source serve_lib.sh with SMOKE_NAME set}"

fails=0
checks=0
note() { printf '%s: %s\n' "$SMOKE_NAME" "$*"; }
fail() {
  printf '%s: FAIL: %s\n' "$SMOKE_NAME" "$*" >&2
  fails=$((fails + 1))
}
check() { checks=$((checks + 1)); }

finish() {
  if [ "$fails" -eq 0 ]; then
    note "OK ($checks checks)"
    exit 0
  else
    note "$fails of $checks checks FAILED"
    exit 1
  fi
}

# scrape_url <stderr-log> [<pid>] — echo the http://127.0.0.1:PORT
# announcement from the log (empty if the process dies first).
scrape_url() {
  _log=$1
  _pid=${2:-}
  _url=
  for _ in $(seq 1 100); do
    _url=$(grep -o 'http://127.0.0.1:[0-9]*' "$_log" | head -1)
    [ -n "$_url" ] && break
    if [ -n "$_pid" ] && ! kill -0 "$_pid" 2>/dev/null; then break; fi
    sleep 0.1
  done
  echo "$_url"
}

# wait_healthz <url> [<pid>] — poll /healthz until it answers ok.  The
# announcement can precede the accept loop by a beat on a loaded machine,
# so readiness gets a bounded retry loop instead of one shot.
wait_healthz() {
  _url=$1
  _pid=${2:-}
  _body=
  for _ in $(seq 1 50); do
    _body=$(curl -sf --max-time 5 "$_url/healthz") && break
    if [ -n "$_pid" ] && ! kill -0 "$_pid" 2>/dev/null; then break; fi
    sleep 0.1
  done
  [ "$_body" = "ok" ]
}

# quit_bye <url> — /quit must answer "bye" (fully written before the
# socket closes: a client that reads it knows the daemon committed to
# shutting down).
quit_bye() {
  _body=$(curl -sf --max-time 5 "$1/quit") || return 1
  [ "$_body" = "bye" ]
}

# json_field <field> — extract the first string value of "field" from
# JSON on stdin (good enough for the smoke protocol bodies).
json_field() {
  grep -o "\"$1\":\"[^\"]*\"" | head -1 | cut -d'"' -f4
}

# json_int <field> — extract the first integer value of "field" from
# JSON on stdin.
json_int() {
  grep -o "\"$1\":-\{0,1\}[0-9]*" | head -1 | cut -d: -f2
}
