#!/usr/bin/env bash
# End-to-end eprocd session-service smoke (make serve-session-smoke).
#
# Start eprocd with a tiny resident cap, then walk the whole session
# protocol over real loopback HTTP: create sessions, step them, force
# hibernation by exceeding the cap, rehydrate transparently, stream
# trace events (chunked JSONL) that `eproc verify-trace` accepts, check
# /metrics, delete, and drive the 1000-session `eproc load-test` against
# the same daemon — the scale acceptance criterion, with the cap forcing
# hibernation churn throughout.  Finally /quit must answer "bye" and the
# daemon must exit 0.
set -u

EPROC=${EPROC:-_build/default/bin/eproc.exe}
EPROCD=${EPROCD:-_build/default/bin/eprocd.exe}

for exe in "$EPROC" "$EPROCD"; do
  if [ ! -x "$exe" ]; then
    echo "serve_session_smoke: $exe not built (run dune build first)" >&2
    exit 2
  fi
done

SMOKE_NAME=serve_session_smoke
. "$(dirname "$0")/serve_lib.sh"

work=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

G="--family regular:4 -n 64 --seed 3" # graph identity (shared with verify)

"$EPROCD" --port 0 --state-dir "$work/state" --resident-cap 2 \
  >"$work/out.log" 2>"$work/err.log" &
pid=$!

url=$(scrape_url "$work/err.log" "$pid")
check
if [ -z "$url" ]; then
  fail "no listen announcement on stderr"
  cat "$work/err.log" >&2
  exit 1
fi
port=${url##*:}
note "driving $url"

check
wait_healthz "$url" "$pid" || fail "daemon never answered /healthz"

# --- create + step ----------------------------------------------------------
check
sid=$(curl -sf -X POST \
  --data '{"family":"regular:4","n":64,"process":"e-process","seed":3}' \
  "$url/sessions" | json_field id)
[ -n "$sid" ] || fail "create-session returned no id"

check
steps=$(curl -sf -X POST --data '{"steps":40}' "$url/sessions/$sid/step" \
  | json_int steps)
[ "$steps" = "40" ] || fail "stepped to '$steps', wanted 40"

# Malformed requests are structured errors, never crashes.
check
code=$(curl -s -o "$work/bad.json" -w '%{http_code}' -X POST \
  --data '{nope' "$url/sessions")
[ "$code" = "400" ] || fail "bad JSON create answered $code, wanted 400"
check
grep -q '"code":"bad_json"' "$work/bad.json" \
  || fail "bad JSON error not structured: $(cat "$work/bad.json")"
check
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  --data '{"steps":-5}' "$url/sessions/$sid/step")
[ "$code" = "400" ] || fail "negative steps answered $code, wanted 400"
check
code=$(curl -s -o /dev/null -w '%{http_code}' "$url/sessions/s999999")
[ "$code" = "404" ] || fail "unknown session answered $code, wanted 404"

# --- hibernation under the cap ----------------------------------------------
# Two more sessions exceed resident-cap 2: the LRU session must be
# snapshotted to the state dir.
for seed in 4 5; do
  check
  other=$(curl -sf -X POST \
    --data "{\"family\":\"regular:4\",\"n\":64,\"seed\":$seed}" \
    "$url/sessions" | json_field id)
  [ -n "$other" ] || fail "create-session (seed $seed) returned no id"
done

check
snaps=$(find "$work/state" -name snapshot.json | wc -l)
[ "$snaps" -ge 1 ] || fail "cap overflow left no hibernation snapshot on disk"

check
hib=$(curl -sf --max-time 5 "$url/metrics" \
  | grep '^ewalk_hibernations_total' | awk '{print $2}')
[ -n "$hib" ] && [ "${hib%.*}" -ge 1 ] \
  || fail "hibernations counter is '$hib', wanted >= 1"

# Stepping the evicted session rehydrates it transparently: the count
# continues from 40, bit-identically.
check
steps=$(curl -sf -X POST --data '{"steps":20}' "$url/sessions/$sid/step" \
  | json_int steps)
[ "$steps" = "60" ] || fail "rehydrated session stepped to '$steps', wanted 60"

check
reh=$(curl -sf --max-time 5 "$url/metrics" \
  | grep '^ewalk_rehydrations_total' | awk '{print $2}')
[ -n "$reh" ] && [ "${reh%.*}" -ge 1 ] \
  || fail "rehydrations counter is '$reh', wanted >= 1"

# --- trace streams verify ----------------------------------------------------
# A resumed stream from the stepped-and-rehydrated session.
check
curl -sf --max-time 10 "$url/sessions/$sid/trace?steps=5000" \
  >"$work/resumed.jsonl" || fail "trace stream request failed"
check
grep -q '"type":"resume"' "$work/resumed.jsonl" \
  || fail "stream from a running session carries no resume event"
check
"$EPROC" verify-trace $G "$work/resumed.jsonl" >/dev/null \
  || fail "verify-trace rejected the resumed session stream"

# A fresh stream from a brand-new session covers the graph end to end.
check
fresh=$(curl -sf -X POST \
  --data '{"family":"regular:4","n":64,"seed":3,"process":"srw"}' \
  "$url/sessions" | json_field id)
[ -n "$fresh" ] || fail "create-session (fresh) returned no id"
check
curl -sf --max-time 10 "$url/sessions/$fresh/trace?steps=100000" \
  >"$work/fresh.jsonl" || fail "fresh trace stream request failed"
check
"$EPROC" verify-trace $G "$work/fresh.jsonl" >/dev/null \
  || fail "verify-trace rejected the fresh session stream"
check
grep -q '"type":"run_end"' "$work/fresh.jsonl" \
  && grep -q '"covered":true' "$work/fresh.jsonl" \
  || fail "fresh stream did not run to cover"

# --- exposition --------------------------------------------------------------
check
curl -sf --max-time 5 "$url/metrics" >"$work/metrics.om" \
  || fail "/metrics request failed"
check
"$EPROC" openmetrics-validate - <"$work/metrics.om" >/dev/null \
  || fail "/metrics exposition rejected by openmetrics-validate"
check
grep -q '^ewalk_sessions ' "$work/metrics.om" \
  || fail "/metrics exposition has no ewalk_sessions gauge"

# --- delete ------------------------------------------------------------------
check
curl -sf -X DELETE "$url/sessions/$fresh" >/dev/null \
  || fail "delete-session request failed"
check
code=$(curl -s -o /dev/null -w '%{http_code}' "$url/sessions/$fresh")
[ "$code" = "404" ] || fail "deleted session answered $code, wanted 404"

# --- scale: 1000 concurrent sessions under the cap ---------------------------
# The acceptance criterion: the daemon serves >= 1000 sessions from
# `eproc load-test`, with resident-cap 2 forcing hibernation/rehydration
# on essentially every request.
check
if "$EPROC" load-test --port "$port" --sessions 1000 --steps 20 \
  --clients 4 $G >"$work/load.log" 2>&1; then
  note "$(grep -o 'created [0-9]*/[0-9]* sessions in [0-9.]* s' "$work/load.log" | head -1)"
  note "$(grep -o 'advanced [0-9]* steps.*HTTP)' "$work/load.log" | head -1)"
else
  fail "load-test failed: $(cat "$work/load.log")"
fi

check
sessions=$(curl -sf --max-time 5 "$url/metrics" \
  | grep '^ewalk_sessions ' | awk '{print $2}')
[ -n "$sessions" ] && [ "${sessions%.*}" -ge 1003 ] \
  || fail "daemon reports '$sessions' sessions after load-test, wanted >= 1003"

# --- shutdown ----------------------------------------------------------------
check
quit_bye "$url" || fail "/quit did not answer 'bye'"

check
wait "$pid"
status=$?
pid=
[ "$status" -eq 0 ] || {
  fail "eprocd exited $status"
  cat "$work/err.log" >&2
}

check
grep -q 'hibernated [0-9]* sessions; bye' "$work/err.log" \
  || fail "no graceful-shutdown announcement on stderr"

finish
