#!/usr/bin/env bash
# Live-endpoint smoke test (make serve-smoke).
#
# Start a multi-second `eproc cover --listen 0` in the background, scrape
# the ephemeral port from its stderr announcement, and poll the endpoint
# mid-run: /healthz answers ok, /progress serves JSON with a live steps
# counter, and /metrics renders an exposition that passes
# `eproc openmetrics-validate`.  Then /quit must answer "bye" and stop the
# server early, and the run itself must still complete with exit 0.
set -u

EPROC=${EPROC:-_build/default/bin/eproc.exe}

if [ ! -x "$EPROC" ]; then
  echo "serve_smoke: $EPROC not built (run dune build first)" >&2
  exit 2
fi

SMOKE_NAME=serve_smoke
. "$(dirname "$0")/serve_lib.sh"

work=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null
  rm -rf "$work"
}
trap cleanup EXIT

# A few large trials keep the walk busy for seconds — a wide window to
# scrape in.  --listen 0 binds an ephemeral port and announces it.
"$EPROC" cover --family regular:4 -n 300000 --trials 4 --seed 1 --jobs 1 \
  --listen 0 >"$work/out.log" 2>"$work/err.log" &
pid=$!

url=$(scrape_url "$work/err.log" "$pid")
check
if [ -z "$url" ]; then
  fail "no listen announcement on stderr"
  cat "$work/err.log" >&2
  wait "$pid"
  exit 1
fi
note "scraping $url mid-run"

# /healthz: liveness.
check
wait_healthz "$url" "$pid" || fail "/healthz never answered 'ok'"

# The endpoint is up before the first graph is even generated (it serves
# nulls until the walk starts); wait until the walk is actually stepping
# so the scrapes below see live telemetry.
s1=
for _ in $(seq 1 100); do
  s1=$(curl -sf --max-time 5 "$url/progress" | grep -o '"steps":[0-9]*' \
    | cut -d: -f2)
  [ -n "$s1" ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
check
[ -n "$s1" ] || fail "walk never reported a steps count on /progress"

# /progress: JSON with a live steps counter and throughput.
check
curl -sf --max-time 5 "$url/progress" >"$work/progress.json" \
  || fail "/progress request failed"
check
grep -q '"steps":' "$work/progress.json" \
  || fail "/progress carries no steps field: $(cat "$work/progress.json")"
check
grep -q '"steps_per_second":' "$work/progress.json" \
  || fail "/progress carries no steps_per_second field"
check
grep -q '"steps_per_second_lifetime":' "$work/progress.json" \
  || fail "/progress carries no steps_per_second_lifetime field"
check
grep -q '"run_id":"r[0-9a-f]\{16\}"' "$work/progress.json" \
  || fail "/progress carries no run_id: $(cat "$work/progress.json")"

# /metrics: the OpenMetrics exposition must pass the validator.
check
curl -sf --max-time 5 "$url/metrics" >"$work/metrics.om" \
  || fail "/metrics request failed"
check
"$EPROC" openmetrics-validate - <"$work/metrics.om" >/dev/null \
  || fail "/metrics exposition rejected by openmetrics-validate"
check
grep -q '^ewalk_steps_total' "$work/metrics.om" \
  || fail "/metrics exposition has no ewalk_steps_total sample"

# A second scrape must observe forward progress (monotone steps counter).
check
sleep 0.5
s2=$(curl -sf --max-time 5 "$url/progress" | grep -o '"steps":[0-9]*' \
  | cut -d: -f2)
if [ -z "$s1" ] || [ -z "$s2" ] || [ "$s2" -lt "$s1" ]; then
  fail "steps counter not monotone across scrapes ($s1 -> $s2)"
fi

# /quit answers "bye" (written before the socket closes) and stops the
# server; the run itself must still finish cleanly.
check
quit_bye "$url" || fail "/quit did not answer 'bye'"

check
wait "$pid"
status=$?
pid=
[ "$status" -eq 0 ] || {
  fail "cover run exited $status"
  cat "$work/err.log" >&2
}

# After shutdown the port must be closed.
check
if curl -sf --max-time 2 "$url/healthz" >/dev/null 2>&1; then
  fail "server still answering after /quit and process exit"
fi

finish
