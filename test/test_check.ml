(* Tests for Ewalk_check: the invariant monitor, the naive oracles, the
   trace replay verifier, and the model-based differential harness —
   including the mutation smoke tests that prove the checkers actually
   catch broken walks, not just accept correct ones. *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Gen_random = Ewalk_graph.Gen_random
module Traversal = Ewalk_graph.Traversal
module Rng = Ewalk_prng.Rng
module Trace = Ewalk_obs.Trace
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Rotor = Ewalk.Rotor
module Cover = Ewalk.Cover
module Observe = Ewalk.Observe
module Invariant = Ewalk_check.Invariant
module Oracle = Ewalk_check.Oracle
module Replay = Ewalk_check.Replay
module Differential = Ewalk_check.Differential

let qcheck = QCheck_alcotest.to_alcotest

(* -- helpers ---------------------------------------------------------------- *)

let edge_between g u v =
  match
    Graph.fold_edges g
      (fun acc e a b ->
        if acc = None && ((a = u && b = v) || (a = v && b = u)) then Some e
        else acc)
      None
  with
  | Some e -> e
  | None -> Alcotest.failf "no edge between %d and %d" u v

(* Run a walk process to vertex cover, collecting its full event stream
   the same way `eproc trace` does (native observer + generic
   instrumentation). *)
let collect_events g make =
  let events = ref [] in
  let sink = Trace.of_fun (fun ev -> events := ev :: !events) in
  let obs = Observe.create ~sink () in
  let p, attach = make () in
  attach obs;
  let p = Observe.instrument obs p in
  let result = Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) p in
  Observe.finish obs p;
  (List.rev !events, result)

let make_eprocess ?rule g seed () =
  let t = Eprocess.create ?rule g (Rng.create ~seed ()) ~start:0 in
  (Eprocess.process t, fun obs -> Observe.attach_eprocess obs t)

let make_srw g seed () =
  let t = Srw.create g (Rng.create ~seed ()) ~start:0 in
  (Srw.process t, fun obs -> Observe.attach_srw obs t)

let make_lazy_srw g seed () =
  let t = Srw.create_lazy g (Rng.create ~seed ()) ~start:0 in
  (Srw.process t, fun obs -> Observe.attach_srw obs t)

let make_rotor g seed () =
  let t = Rotor.create ~randomize_rotors:true g (Rng.create ~seed ()) ~start:0 in
  (Rotor.process t, fun obs -> Observe.attach_rotor obs t)

let kind_t =
  Alcotest.testable
    (fun ppf k -> Format.pp_print_string ppf (Invariant.kind_name k))
    ( = )

(* Replace the first occurrence of [pat] in [s] (identity when absent). *)
let replace_once ~pat ~by s =
  let n = String.length s and m = String.length pat in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - m - i)

let expect_kind what kind = function
  | Some v -> Alcotest.check kind_t what kind v.Invariant.v_kind
  | None -> Alcotest.failf "%s: no violation reported" what

(* -- oracles ---------------------------------------------------------------- *)

(* The oracle E-process is itself subject to the invariants: feed its own
   trajectory through the monitor. *)
let oracle_self_consistent () =
  List.iter
    (fun (label, g) ->
      let orc = Oracle.Eprocess.create g (Rng.create ~seed:9 ()) ~start:0 in
      let inv = Invariant.create g ~start:0 in
      let steps = ref 0 in
      while (not (Oracle.Eprocess.all_vertices_visited orc)) && !steps < 100_000 do
        let before = Oracle.Eprocess.position orc in
        let blue_before = Oracle.Eprocess.blue_steps orc in
        Oracle.Eprocess.step orc;
        incr steps;
        (* Recover the traversed edge from the oracle's own bookkeeping:
           the landing vertex plus whether the blue count moved. *)
        let after = Oracle.Eprocess.position orc in
        let blue = Oracle.Eprocess.blue_steps orc > blue_before in
        let edge =
          (* the unique incident (before, after) edge consistent with the
             visited set change; for the monitor's purposes any incident
             edge with the right endpoints and visited status works *)
          match
            Graph.fold_neighbors g before
              (fun acc w e ->
                if acc = None && w = after
                   && Oracle.Eprocess.edge_visited orc e
                   && (not blue) = Invariant.edge_visited inv e
                then Some e
                else acc)
              None
          with
          | Some e -> e
          | None -> edge_between g before after
        in
        match Invariant.on_step inv ~step:!steps ~vertex:after ~edge ~blue with
        | Some v ->
            Alcotest.failf "%s: oracle violated invariant: %s" label
              (Invariant.violation_to_string v)
        | None -> ()
      done;
      Alcotest.(check bool) (label ^ " covered") true
        (Oracle.Eprocess.all_vertices_visited orc))
    [
      ("cycle16", Gen_classic.cycle 16);
      ("double-cycle10", Gen_classic.double_cycle 10);
      ("petersen", Gen_classic.petersen ());
    ]

(* -- differential harness --------------------------------------------------- *)

let stock_suite_passes () =
  let cases = Differential.stock_cases ~seeds:[ 1; 2 ] () in
  let r = Differential.run_suite ~jobs:1 cases in
  (match r.Differential.failures with
  | [] -> ()
  | (name, msg) :: _ ->
      Alcotest.failf "%d case(s) failed; first: %s: %s"
        (List.length r.Differential.failures)
        name msg);
  Alcotest.(check int) "all cases ran" (List.length cases) r.Differential.cases;
  Alcotest.(check bool) "steps verified" true (r.Differential.steps > 0)

let suite_jobs_equivalence () =
  let r1 = Differential.run_suite ~jobs:1 (Differential.stock_cases ~seeds:[ 1 ] ()) in
  let r4 = Differential.run_suite ~jobs:4 (Differential.stock_cases ~seeds:[ 1 ] ()) in
  Alcotest.(check int) "cases" r1.Differential.cases r4.Differential.cases;
  Alcotest.(check int) "steps" r1.Differential.steps r4.Differential.steps;
  Alcotest.(check (list (pair string string)))
    "failures" r1.Differential.failures r4.Differential.failures

(* -- invariant monitor: mutation smoke tests ------------------------------- *)

(* Deliberately broken step streams on the 4-cycle (vertices 0-3). *)
let mutation_synthetic_streams () =
  let g = Gen_classic.cycle 4 in
  let e01 = edge_between g 0 1 and e12 = edge_between g 1 2 in
  (* anti-preference: go back along the visited edge while vertex 1 still
     has an unvisited one *)
  let inv = Invariant.create g ~start:0 in
  Alcotest.(check bool) "honest blue step accepted" true
    (Invariant.on_step inv ~step:1 ~vertex:1 ~edge:e01 ~blue:true = None);
  expect_kind "anti-preference red step" Invariant.Preference
    (Invariant.on_step inv ~step:2 ~vertex:0 ~edge:e01 ~blue:false);
  (* blue flag on an already-visited edge *)
  let inv = Invariant.create g ~start:0 in
  ignore (Invariant.on_step inv ~step:1 ~vertex:1 ~edge:e01 ~blue:true);
  expect_kind "blue lie" Invariant.Blue_flag
    (Invariant.on_step inv ~step:2 ~vertex:0 ~edge:e01 ~blue:true);
  (* non-incident edge *)
  let inv = Invariant.create g ~start:0 in
  expect_kind "non-incident edge" Invariant.Edge_invalid
    (Invariant.on_step inv ~step:1 ~vertex:2 ~edge:e12 ~blue:true);
  (* edge out of range *)
  let inv = Invariant.create g ~start:0 in
  expect_kind "edge out of range" Invariant.Edge_invalid
    (Invariant.on_step inv ~step:1 ~vertex:1 ~edge:(Graph.m g) ~blue:true);
  (* wrong landing vertex *)
  let inv = Invariant.create g ~start:0 in
  expect_kind "wrong endpoint" Invariant.Edge_invalid
    (Invariant.on_step inv ~step:1 ~vertex:2 ~edge:e01 ~blue:true);
  (* skipped step index *)
  let inv = Invariant.create g ~start:0 in
  expect_kind "skipped step" Invariant.Schema
    (Invariant.on_step inv ~step:2 ~vertex:1 ~edge:e01 ~blue:true);
  (* deterministic rule: the wrong unvisited edge *)
  let inv = Invariant.create ~rule:Invariant.Lowest_slot g ~start:0 in
  match Invariant.unvisited_incident inv 0 with
  | _ :: second :: _ ->
      let w = Graph.opposite g second 0 in
      expect_kind "wrong slot for lowest rule" Invariant.Rule
        (Invariant.on_step inv ~step:1 ~vertex:w ~edge:second ~blue:true)
  | _ -> Alcotest.fail "cycle vertex should have two unvisited edges"

(* A live production walk with a deliberately broken (rule-violating)
   adversarial choice function is flagged by the rule monitor: the
   differential harness's detection path, end to end. *)
let mutation_broken_rule_detected () =
  let g = Gen_classic.cycle 16 in
  let prod =
    Eprocess.create
      ~rule:(Eprocess.Adversarial (fun _ cands -> Array.length cands - 1))
      g (Rng.create ~seed:3 ()) ~start:0
  in
  let inv = Invariant.create ~rule:Invariant.Lowest_slot g ~start:0 in
  let first = ref None in
  Eprocess.set_observer prod
    (Some
       (fun ev ->
         match ev with
         | Trace.Step { step; vertex; edge; blue } -> (
             match Invariant.on_step inv ~step ~vertex ~edge ~blue with
             | Some v when !first = None -> first := Some v
             | _ -> ())
         | _ -> ()));
  for _ = 1 to 40 do
    Eprocess.step prod
  done;
  expect_kind "broken rule caught" Invariant.Rule !first

(* An unmonitored-looking correct walk produces zero violations on an
   even-degree multigraph — including the blue-parity invariant. *)
let monitor_accepts_correct_walks () =
  List.iter
    (fun (label, g) ->
      let prod = Eprocess.create g (Rng.create ~seed:21 ()) ~start:0 in
      let inv = Invariant.create g ~start:0 in
      Eprocess.set_observer prod
        (Some
           (fun ev ->
             match ev with
             | Trace.Step { step; vertex; edge; blue } ->
                 ignore (Invariant.on_step inv ~step ~vertex ~edge ~blue)
             | _ -> ()));
      let cov = Eprocess.coverage prod in
      let steps = ref 0 in
      while (not (Ewalk.Coverage.all_vertices_visited cov)) && !steps < 100_000 do
        Eprocess.step prod;
        incr steps
      done;
      match Invariant.violations inv with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s: unexpected violation: %s" label
            (Invariant.violation_to_string v))
    [
      ("double-cycle14 (parallel edges)", Gen_classic.double_cycle 14);
      ("hypercube4", Gen_classic.hypercube 4);
      ("petersen (odd degrees)", Gen_classic.petersen ());
      ("lollipop6-6", Gen_classic.lollipop 6 6);
    ]

(* -- replay verifier -------------------------------------------------------- *)

let specs g =
  [
    ("e-process(uar)", make_eprocess g 5);
    ("e-process(lowest)", make_eprocess ~rule:Eprocess.Lowest_slot g 5);
    ("e-process(highest)", make_eprocess ~rule:Eprocess.Highest_slot g 5);
    ("srw", make_srw g 5);
    ("lazy-srw", make_lazy_srw g 5);
    ("rotor", make_rotor g 5);
  ]

let replay_accepts_stock_streams () =
  let g = Gen_regular.random_regular_connected (Rng.create ~seed:11 ()) 40 4 in
  List.iter
    (fun (label, make) ->
      let events, result = collect_events g make in
      (* JSONL round-trip: serialise each event, parse it back. *)
      let parsed =
        List.map
          (fun ev ->
            match Trace.event_of_string (Trace.event_to_string ev) with
            | Ok e -> e
            | Error e -> Alcotest.failf "%s: reparse failed: %s" label e)
          events
      in
      Alcotest.(check bool) (label ^ ": round-trip identical") true
        (parsed = events);
      match Replay.verify_events g parsed with
      | Error v ->
          Alcotest.failf "%s: replay rejected: %s" label
            (Invariant.violation_to_string v)
      | Ok s ->
          Alcotest.(check bool) (label ^ ": covered") true s.Replay.covered;
          Alcotest.(check bool) (label ^ ": steps seen") true s.Replay.has_steps;
          (match result with
          | Some t ->
              Alcotest.(check (option int))
                (label ^ ": cover step") (Some t) s.Replay.cover_step;
              Alcotest.(check int) (label ^ ": step count") t s.Replay.steps
          | None -> Alcotest.failf "%s: walk hit its cap" label))
    (specs g)

let replay_rejects_tampered_streams () =
  let g = Gen_classic.cycle 12 in
  let events, _ = collect_events g (make_eprocess g 5) in
  let expect_error what tamper kind =
    match Replay.verify_events g (tamper events) with
    | Ok _ -> Alcotest.failf "%s: tampered stream accepted" what
    | Error v -> Alcotest.check kind_t what kind v.Invariant.v_kind
  in
  (* flip a blue step red: the walk now "ignores" an unvisited edge *)
  expect_error "blue flag cleared"
    (List.map (function
      | Trace.Step { step = 1; vertex; edge; blue = true } ->
          Trace.Step { step = 1; vertex; edge; blue = false }
      | ev -> ev))
    Invariant.Preference;
  (* make a step claim a non-incident edge *)
  expect_error "edge replaced"
    (List.map (function
      | Trace.Step { step = 1; vertex; edge; blue } ->
          Trace.Step { step = 1; vertex; edge = (edge + 3) mod Graph.m g; blue }
      | ev -> ev))
    Invariant.Edge_invalid;
  (* drop the run_end: a truncated stream *)
  expect_error "run_end dropped"
    (List.filter (function Trace.Run_end _ -> false | _ -> true))
    Invariant.Schema;
  (* duplicate run_start mid-stream *)
  expect_error "duplicate run_start"
    (fun evs ->
      match evs with
      | (Trace.Run_start _ as s) :: rest -> s :: s :: rest
      | _ -> evs)
    Invariant.Schema;
  (* inflate a milestone count *)
  expect_error "milestone count inflated"
    (List.map (function
      | Trace.Milestone { step; kind; percent; count; total } ->
          Trace.Milestone { step; kind; percent; count = count + 1; total }
      | ev -> ev))
    Invariant.Coverage;
  (* events after run_end *)
  expect_error "event after run_end"
    (fun evs -> evs @ [ Trace.Run_end { steps = 0; covered = false } ])
    Invariant.Schema

let replay_rejects_tampered_jsonl_line () =
  let g = Gen_classic.cycle 8 in
  let events, _ = collect_events g (make_eprocess g 2) in
  let lines = List.map Trace.event_to_string events in
  (* corrupt one step line at the JSON level, as a file-tamperer would *)
  let tampered =
    List.map
      (fun line ->
        if
          String.length line > 15
          && String.sub line 0 15 = {|{"type":"step",|}
        then replace_once ~pat:{|"blue":true|} ~by:{|"blue":false|} line
        else line)
      lines
  in
  let verifier = Replay.create g in
  let saw_violation = ref false in
  List.iter
    (fun line ->
      if not !saw_violation then
        match Trace.event_of_string line with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok ev -> (
            match Replay.feed verifier ev with
            | Ok () -> ()
            | Error _ -> saw_violation := true))
    tampered;
  Alcotest.(check bool) "tampered JSONL flagged" true !saw_violation

let replay_run_info_placement () =
  let g = Gen_classic.cycle 12 in
  let events, _ = collect_events g (make_eprocess g 5) in
  let info =
    Trace.Run_info { run_id = "r0123456789abcdef"; parent_run_id = None }
  in
  (* Prologue placement (right after run_start) is accepted and surfaces
     in the summary. *)
  (match
     Replay.verify_events g
       (match events with s :: rest -> s :: info :: rest | [] -> [])
   with
  | Error v -> Alcotest.failf "prologue run_info rejected: %s" (Invariant.violation_to_string v)
  | Ok s ->
      Alcotest.(check (option string))
        "summary carries run_id" (Some "r0123456789abcdef") s.Replay.run_id;
      Alcotest.(check bool) "summary string mentions run" true
        (let str = Replay.summary_to_string s in
         let nn = String.length "r0123456789abcdef" in
         let rec go i =
           i + nn <= String.length str
           && (String.sub str i nn = "r0123456789abcdef" || go (i + 1))
         in
         go 0));
  let expect_schema what evs =
    match Replay.verify_events g evs with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error v -> Alcotest.check kind_t what Invariant.Schema v.Invariant.v_kind
  in
  (* Mid-stream, duplicated, or empty-id run_info are schema violations. *)
  expect_schema "run_info after steps" (events @ [ info ]);
  expect_schema "duplicate run_info"
    (match events with s :: rest -> s :: info :: info :: rest | [] -> []);
  expect_schema "empty run_id"
    (match events with
    | s :: rest ->
        s
        :: Trace.Run_info { run_id = ""; parent_run_id = None }
        :: rest
    | [] -> [])

(* -- model-based property --------------------------------------------------- *)

(* Generated graphs across the families the theorems distinguish, a random
   mode, a random seed: production must match the oracle / monitor.
   QCheck shrinks the tuple toward a minimal failing configuration. *)
let prop_differential_generated =
  QCheck.Test.make ~name:"production matches oracle on generated graphs"
    ~count:50
    QCheck.(
      quad (int_range 0 4) (int_range 0 4) (int_range 8 36) (int_range 0 999))
    (fun (fam, mode_i, size, seed) ->
      let grng = Rng.create ~seed:(1 + (seed * 5) + fam) () in
      let g =
        match fam with
        | 0 -> Gen_regular.random_regular_connected grng (max 10 size) 4
        | 1 ->
            let s = max 10 size in
            let s = if s mod 2 = 1 then s + 1 else s in
            Gen_regular.random_regular_connected grng s 3
        | 2 -> Gen_classic.hypercube (3 + (size mod 3))
        | 3 -> Gen_classic.lollipop (4 + (size mod 6)) (4 + (seed mod 6))
        | _ -> Gen_random.gnp grng (max 8 size) 0.3
      in
      (* disconnected or degenerate draws are rejected, not failed *)
      QCheck.assume (Graph.n g > 0 && Graph.min_degree g > 0);
      QCheck.assume (Traversal.is_connected g);
      let mode = List.nth Differential.all_modes mode_i in
      let case =
        {
          Differential.label = Printf.sprintf "generated-fam%d" fam;
          graph = g;
          seed;
          max_steps = 500_000;
          mode;
        }
      in
      match Differential.run_case case with
      | Ok _ -> true
      | Error msg ->
          QCheck.Test.fail_reportf "%s (n=%d m=%d): %s"
            (Differential.case_name case)
            (Graph.n g) (Graph.m g) msg)

let () =
  Alcotest.run "check"
    [
      ( "oracle",
        [ Alcotest.test_case "self-consistent" `Quick oracle_self_consistent ] );
      ( "differential",
        [
          Alcotest.test_case "stock suite passes" `Quick stock_suite_passes;
          Alcotest.test_case "jobs=1 equals jobs=4" `Quick
            suite_jobs_equivalence;
          qcheck prop_differential_generated;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "synthetic broken streams" `Quick
            mutation_synthetic_streams;
          Alcotest.test_case "broken rule detected live" `Quick
            mutation_broken_rule_detected;
          Alcotest.test_case "correct walks accepted" `Quick
            monitor_accepts_correct_walks;
        ] );
      ( "replay",
        [
          Alcotest.test_case "accepts stock streams" `Quick
            replay_accepts_stock_streams;
          Alcotest.test_case "rejects tampered streams" `Quick
            replay_rejects_tampered_streams;
          Alcotest.test_case "rejects tampered JSONL" `Quick
            replay_rejects_tampered_jsonl_line;
          Alcotest.test_case "run_info prologue placement" `Quick
            replay_run_info_placement;
        ] );
    ]
