(* The compact-data-plane equivalence battery (gating `make test-compact`,
   part of `make ci`):

   - the packed {!Ewalk.Bitset} against a boolean-array reference model
     (qcheck over random op sequences, with shrinking), plus the hex wire
     format round trip;
   - the {!Ewalk.Compact} unvisited-arc partition against the legacy
     {!Ewalk.Unvisited} swap-partition, draw-for-draw: identical live-slot
     enumeration after every retirement means any consumer making the same
     PRNG calls draws identically;
   - full-run trace byte-equality across the five processes, the three
     cache-conscious reorders (vertices mapped back through the inverse
     permutation), the kernel engine at W in {1,4}, and competing
     run_rounds at jobs in {1,4};
   - mutation kills: with Compact.set_fault injecting a broken
     swap-to-back or a stale popcount, this battery must detect the
     defect — proving it would catch a real one;
   - the Bloom approximate-visited characterization: cover still
     completes, and the measured false-positive rate stays within the
     textbook bound (with slack for double hashing). *)

module Graph = Ewalk_graph.Graph
module Rng = Ewalk_prng.Rng
module Bitset = Ewalk.Bitset
module Compact = Ewalk.Compact
module Unvisited = Ewalk.Unvisited
module Bloom = Ewalk.Bloom
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Rotor = Ewalk.Rotor
module Coverage = Ewalk.Coverage
module Trace = Ewalk_obs.Trace
module Kengine = Ewalk_kernel.Engine
module Exp_util = Ewalk_expt.Exp_util

let qcheck = QCheck_alcotest.to_alcotest

(* -- Bitset vs boolean-array reference -------------------------------------- *)

(* An op sequence over a [len]-bit set, mirrored into a bool array; every
   observation must agree.  Ops are (tag, raw index) pairs so qcheck's
   list shrinker produces readable counterexamples. *)
let prop_bitset_reference =
  QCheck.Test.make ~name:"Bitset = bool-array reference (ops, popcount, hex)"
    ~count:300
    QCheck.(
      pair (int_range 1 200) (small_list (pair (int_range 0 2) small_nat)))
    (fun (len, ops) ->
      let b = Bitset.create len in
      let r = Array.make len false in
      List.iter
        (fun (tag, raw) ->
          let i = raw mod len in
          match tag with
          | 0 ->
              Bitset.set b i;
              r.(i) <- true
          | 1 ->
              Bitset.clear b i;
              r.(i) <- false
          | _ ->
              if Bitset.get b i <> r.(i) then
                QCheck.Test.fail_reportf "get %d disagrees" i)
        ops;
      let popcount_ok =
        Bitset.popcount b = Array.fold_left (fun a x -> if x then a + 1 else a) 0 r
      in
      let bits_ok = Array.for_all Fun.id (Array.mapi (fun i x -> Bitset.get b i = x) r) in
      let hex_ok =
        let b' = Bitset.of_hex ~len (Bitset.to_hex b) in
        Bitset.equal b b' && Bitset.length b' = len
      in
      let copy_ok =
        let c = Bitset.copy b in
        Bitset.equal b c
        && (len = 0
           ||
           (* a copy must not share the backing store *)
           let i = (match ops with (_, raw) :: _ -> raw mod len | [] -> 0) in
           let before = Bitset.get b i in
           Bitset.set c i;
           Bitset.get b i = before)
      in
      popcount_ok && bits_ok && hex_ok && copy_ok)

let bitset_edges () =
  let b = Bitset.create 9 in
  Bitset.set b 0;
  Bitset.set b 8;
  Alcotest.(check int) "popcount" 2 (Bitset.popcount b);
  Alcotest.(check string) "hex, low byte first" "0101" (Bitset.to_hex b);
  Bitset.fill_all b;
  Alcotest.(check int) "fill_all popcount" 9 (Bitset.popcount b);
  Bitset.reset b;
  Alcotest.(check int) "reset popcount" 0 (Bitset.popcount b);
  Alcotest.check_raises "of_hex rejects set padding bit"
    (Invalid_argument "Bitset.of_bytes: padding bits set") (fun () ->
      ignore (Bitset.of_hex ~len:9 "01ff"));
  Alcotest.check_raises "out-of-range get"
    (Invalid_argument "Bitset.get: index out of range") (fun () ->
      ignore (Bitset.get b 9))

(* -- Compact partition vs legacy Unvisited ---------------------------------- *)

(* The draw-for-draw contract: after any retirement sequence, both
   partitions present the same live count and the same slot enumeration at
   every vertex, so a walk drawing [Rng.int (count v)] on top of either
   takes identical steps. *)
let partitions_agree what g c u =
  for v = 0 to Graph.n g - 1 do
    let cc = Compact.count c v and cu = Unvisited.count u v in
    if cc <> cu then
      Alcotest.failf "%s: count at v=%d: compact %d, legacy %d" what v cc cu;
    for i = 0 to cc - 1 do
      let sc = Compact.live_slot c v i and su = Unvisited.live_slot u v i in
      if sc <> su then
        Alcotest.failf "%s: live_slot %d at v=%d: compact %d, legacy %d" what
          i v sc su
    done;
    if Compact.incident_edges c v <> Unvisited.incident_edges u v then
      Alcotest.failf "%s: incident_edges at v=%d differ" what v
  done

let shuffled_edges g seed =
  let rng = Rng.create ~seed () in
  let a = Array.init (Graph.m g) Fun.id in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let prop_compact_matches_unvisited =
  QCheck.Test.make
    ~name:"Compact = legacy Unvisited draw-for-draw (any retirement order)"
    ~count:60
    QCheck.(triple (int_range 3 16) (int_range 0 1000) (int_range 0 1000))
    (fun (half_n, gseed, oseed) ->
      let n = 2 * half_n in
      let g = Exp_util.regular_graph (Rng.create ~seed:gseed ()) ~n ~d:4 in
      let c = Compact.create g and u = Unvisited.create g in
      let order = shuffled_edges g oseed in
      let retired = ref 0 in
      Array.for_all
        (fun e ->
          Compact.retire_edge c e;
          Unvisited.retire_edge u e;
          incr retired;
          (try partitions_agree "qcheck" g c u
           with Alcotest.Test_error ->
             QCheck.Test.fail_reportf "diverged after retiring %d edges"
               !retired);
          Compact.retired_arcs c = 2 * !retired
          && Compact.edges_retired c = !retired
          && Compact.counter_consistent c
          && Compact.edge_visited c e)
        order)

let compact_save_restore () =
  let g = Exp_util.regular_graph (Rng.create ~seed:21 ()) ~n:32 ~d:4 in
  let c = Compact.create g in
  let u = Unvisited.create g in
  Array.iteri
    (fun i e ->
      if i mod 3 <> 0 then begin
        Compact.retire_edge c e;
        Unvisited.retire_edge u e
      end)
    (shuffled_edges g 5);
  (* The wire format is the legacy state: a compact save restores into
     the legacy module and vice versa, partitions still agreeing. *)
  let c' = Compact.restore g (Unvisited.save u) in
  let u' = Unvisited.restore g (Compact.save c) in
  partitions_agree "legacy-state -> compact" g c' u;
  partitions_agree "compact-state -> legacy" g c u';
  Alcotest.(check int) "restored counter from partition"
    (Compact.retired_arcs c) (Compact.retired_arcs c');
  Alcotest.(check bool) "restored counter consistent" true
    (Compact.counter_consistent c')

(* -- mutation kills ---------------------------------------------------------- *)

(* Prove the battery has teeth: under each injected defect, the exact
   checks above must detect a divergence.  If these tests ever pass with
   the fault active, the equivalence battery is vacuous. *)

let detects_broken_swap () =
  let g = Exp_util.regular_graph (Rng.create ~seed:31 ()) ~n:32 ~d:4 in
  let c = Compact.create g and u = Unvisited.create g in
  Compact.set_fault c (Some Compact.Broken_swap);
  let detected = ref false in
  Array.iter
    (fun e ->
      if not !detected then
        (* The defect may surface either as an internal invariant
           violation during a later retirement (the stale index trips the
           region assertion) or as an enumeration divergence from the
           reference — both count as "caught". *)
        try
          Compact.retire_edge c e;
          Unvisited.retire_edge u e;
          partitions_agree "fault" g c u
        with _ -> detected := true)
    (shuffled_edges g 6);
  Alcotest.(check bool) "broken swap-to-back detected" true !detected

let detects_stale_popcount () =
  let g = Exp_util.regular_graph (Rng.create ~seed:32 ()) ~n:32 ~d:4 in
  let c = Compact.create g in
  Compact.set_fault c (Some Compact.Stale_popcount);
  let order = shuffled_edges g 7 in
  Array.iter (Compact.retire_edge c) (Array.sub order 0 10);
  Alcotest.(check bool) "counter_consistent flags the stale counter" false
    (Compact.counter_consistent c);
  Alcotest.(check int) "recount (popcount) is the ground truth" 20
    (Compact.recount c)

(* -- trace byte-equality across reorders ------------------------------------ *)

(* Events rendered through the one serializer the jsonl sink uses: list
   equality here is byte equality of the trace file (run prologue/epilogue
   lines excepted — `eproc` mints a fresh run id per invocation, so the
   CLI-level comparison in test/crash_matrix.sh filters run_info too). *)
let render events = String.concat "\n" (List.map Trace.event_to_string events)

let map_event inv = function
  | Trace.Run_start { name; n; m; start } ->
      Trace.Run_start { name; n; m; start = inv.(start) }
  | Trace.Step { step; vertex; edge; blue } ->
      Trace.Step { step; vertex = inv.(vertex); edge; blue }
  | Trace.Phase { step; kind; vertex } ->
      Trace.Phase { step; kind; vertex = inv.(vertex) }
  | e -> e

let orders = [ ("degree", Graph.Degree_sort); ("bfs", Graph.Bfs); ("rcm", Graph.Rcm) ]

(* [run ?perm g ~start] steps a process on [g] with an observer installed
   and returns the collected events.  The five processes below only
   differ in [run]. *)
let collect run ?perm g ~start =
  let events = ref [] in
  run ?perm g ~start (fun e -> events := e :: !events);
  List.rev !events

let reorder_trace_case name run () =
  let g = Exp_util.regular_graph (Rng.create ~seed:41 ()) ~n:64 ~d:4 in
  let base = render (collect run g ~start:0) in
  List.iter
    (fun (oname, order) ->
      let g', perm = Graph.reorder g order in
      let inv = Graph.inverse_permutation perm in
      let events = collect run ~perm g' ~start:perm.(0) in
      let relabeled = render (List.map (map_event inv) events) in
      Alcotest.(check string)
        (Printf.sprintf "%s under %s reorder" name oname)
        base relabeled)
    orders

let steps_per_trace = 300

let run_eprocess rule ?perm:_ g ~start obs =
  let t = Eprocess.create ~rule g (Rng.create ~seed:42 ()) ~start in
  Eprocess.set_observer t (Some obs);
  Eprocess.run_steps t steps_per_trace

let run_srw ?perm:_ g ~start obs =
  let t = Srw.create g (Rng.create ~seed:42 ()) ~start in
  Srw.set_observer t (Some obs);
  Srw.run_steps t steps_per_trace

let run_rotor ?perm g ~start obs =
  let t =
    Rotor.create ~randomize_rotors:true ?perm g (Rng.create ~seed:42 ()) ~start
  in
  Rotor.set_observer t (Some obs);
  for _ = 1 to steps_per_trace do
    Rotor.step t
  done

(* -- kernel engine: reorder trace equality and jobs invariance --------------- *)

let kernel_reorder_case proc mode w () =
  let g = Exp_util.regular_graph (Rng.create ~seed:51 ()) ~n:64 ~d:4 in
  let run ?perm g ~starts =
    let events = ref [] in
    let e = Kengine.create ~mode ?perm proc g (Rng.create ~seed:52 ()) ~starts in
    Kengine.set_observer e
      (Some (fun ~walker ev -> events := (walker, ev) :: !events));
    for _ = 1 to 200 do
      Kengine.step_round e
    done;
    (List.rev !events, Array.copy (Kengine.positions e))
  in
  let starts = Array.init w (fun i -> (i * 7) mod Graph.n g) in
  let base_events, base_pos = run g ~starts in
  List.iter
    (fun (oname, order) ->
      let g', perm = Graph.reorder g order in
      let inv = Graph.inverse_permutation perm in
      let events, pos = run ~perm g' ~starts:(Array.map (fun s -> perm.(s)) starts) in
      let relabeled = List.map (fun (w, ev) -> (w, map_event inv ev)) events in
      let tag (w, ev) = Printf.sprintf "w%d %s" w (Trace.event_to_string ev) in
      Alcotest.(check string)
        (Printf.sprintf "kernel %s W=%d under %s" (Kengine.proc_name proc) w
           oname)
        (String.concat "\n" (List.map tag base_events))
        (String.concat "\n" (List.map tag relabeled));
      Alcotest.(check (array int))
        "final positions relabel back" base_pos (Array.map (fun p -> inv.(p)) pos))
    orders

let kernel_jobs_invariance () =
  let g = Exp_util.regular_graph (Rng.create ~seed:61 ()) ~n:128 ~d:4 in
  let run jobs =
    Ewalk_par.Pool.with_pool ~jobs @@ fun pool ->
    let e =
      Kengine.create_spread ~mode:Kengine.Competing Kengine.E_uar g
        (Rng.create ~seed:62 ())
        ~walkers:4
    in
    Kengine.run_rounds ~pool e 500;
    ( Array.copy (Kengine.positions e),
      Array.init 4 (fun w ->
          ( Kengine.walker_steps e w,
            Kengine.walker_blue_steps e w,
            Kengine.walker_red_steps e w,
            Kengine.walker_vertices_visited e w,
            Kengine.walker_edges_visited e w,
            Kengine.walker_cover_step e w )) )
  in
  let pos1, st1 = run 1 and pos4, st4 = run 4 in
  Alcotest.(check (array int)) "positions identical at jobs 1 vs 4" pos1 pos4;
  Alcotest.(check bool) "walker counters identical at jobs 1 vs 4" true
    (st1 = st4)

(* -- Bloom approximate-visited characterization ------------------------------ *)

(* On the stock graph matrix: an approximate run must still cover (false
   positives only downgrade blue steps to red), and the measured
   false-positive rate on the step path must stay within the textbook
   (1 - e^{-kn/m})^k bound, with 3x slack for double hashing and sampling
   noise.  The measured numbers are recorded in EXPERIMENTS.md. *)
let bloom_cases =
  [
    ("regular:4 n=256", fun () -> Exp_util.regular_graph (Rng.create ~seed:71 ()) ~n:256 ~d:4);
    ("regular:6 n=128", fun () -> Exp_util.regular_graph (Rng.create ~seed:72 ()) ~n:128 ~d:6);
    ("hypercube:8", fun () -> Ewalk_graph.Gen_classic.hypercube 8);
  ]

let bloom_characterization () =
  List.iter
    (fun (gname, mk) ->
      let g = mk () in
      let bits_per_edge = 8 and hashes = 3 in
      let t =
        Eprocess.create
          ~approx:(Eprocess.Bloom { bits_per_edge; hashes })
          g
          (Rng.create ~seed:73 ())
          ~start:0
      in
      (match Eprocess.run_to_vertex_cover t with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: approx run did not cover" gname);
      Alcotest.(check int)
        (gname ^ ": coverage table (ground truth) complete")
        (Graph.n g)
        (Coverage.vertices_visited (Eprocess.coverage t));
      let fp, queries =
        match Eprocess.approx_distortion t with
        | Some d -> d
        | None -> Alcotest.failf "%s: no distortion counters" gname
      in
      let filter =
        match Eprocess.approx_filter t with
        | Some f -> f
        | None -> Alcotest.failf "%s: no filter" gname
      in
      let measured =
        if queries = 0 then 0.0 else float_of_int fp /. float_of_int queries
      in
      let bound =
        Bloom.fp_rate_bound ~bits:(Bloom.size filter) ~hashes
          ~inserted:(Bloom.inserted filter)
      in
      Printf.printf
        "bloom %-16s bits/edge=%d hashes=%d: %d/%d fp (%.4f measured, \
         %.4f bound, fill %.3f)\n%!"
        gname bits_per_edge hashes fp queries measured bound
        (Bloom.fill_fraction filter);
      if measured > (3.0 *. bound) +. 0.01 then
        Alcotest.failf "%s: measured fp rate %.4f exceeds 3x bound %.4f" gname
          measured bound)
    bloom_cases

(* A tighter direct-membership check, independent of any walk: keys never
   added must false-positive at about the bound. *)
let bloom_direct_fp_rate () =
  let bits = 8 * 4096 and hashes = 3 in
  let f = Bloom.create ~bits ~hashes in
  for k = 0 to 4095 do
    Bloom.add f k
  done;
  for k = 0 to 4095 do
    if not (Bloom.mem f k) then Alcotest.fail "bloom dropped an added key"
  done;
  let fp = ref 0 in
  let probes = 100_000 in
  for k = 4096 to 4095 + probes do
    if Bloom.mem f k then incr fp
  done;
  let measured = float_of_int !fp /. float_of_int probes in
  let bound = Bloom.fp_rate_bound ~bits ~hashes ~inserted:4096 in
  Printf.printf "bloom direct: %.4f measured vs %.4f bound\n%!" measured bound;
  Alcotest.(check bool)
    (Printf.sprintf "direct fp rate %.4f within 2x bound %.4f" measured bound)
    true
    (measured <= (2.0 *. bound) +. 0.005)

let () =
  Alcotest.run "compact"
    [
      ( "bitset",
        [
          qcheck prop_bitset_reference;
          Alcotest.test_case "edge cases and hex format" `Quick bitset_edges;
        ] );
      ( "partition",
        [
          qcheck prop_compact_matches_unvisited;
          Alcotest.test_case "save/restore crosses implementations" `Quick
            compact_save_restore;
        ] );
      ( "mutation-kill",
        [
          Alcotest.test_case "broken swap-to-back is detected" `Quick
            detects_broken_swap;
          Alcotest.test_case "stale popcount is detected" `Quick
            detects_stale_popcount;
        ] );
      ( "reorder-trace",
        [
          Alcotest.test_case "e-process(uar)" `Quick
            (reorder_trace_case "e-process(uar)" (run_eprocess Eprocess.Uar));
          Alcotest.test_case "e-process(lowest)" `Quick
            (reorder_trace_case "e-process(lowest)"
               (run_eprocess Eprocess.Lowest_slot));
          Alcotest.test_case "e-process(highest)" `Quick
            (reorder_trace_case "e-process(highest)"
               (run_eprocess Eprocess.Highest_slot));
          Alcotest.test_case "srw" `Quick (reorder_trace_case "srw" run_srw);
          Alcotest.test_case "rotor" `Quick
            (reorder_trace_case "rotor" run_rotor);
        ] );
      ( "kernel",
        [
          Alcotest.test_case "cooperating euar W=1" `Quick
            (kernel_reorder_case Kengine.E_uar Kengine.Cooperating 1);
          Alcotest.test_case "cooperating euar W=4" `Quick
            (kernel_reorder_case Kengine.E_uar Kengine.Cooperating 4);
          Alcotest.test_case "competing euar W=4" `Quick
            (kernel_reorder_case Kengine.E_uar Kengine.Competing 4);
          Alcotest.test_case "cooperating rotor W=4" `Quick
            (kernel_reorder_case Kengine.Rotor Kengine.Cooperating 4);
          Alcotest.test_case "competing rotor W=4" `Quick
            (kernel_reorder_case Kengine.Rotor Kengine.Competing 4);
          Alcotest.test_case "competing jobs 1 = jobs 4" `Quick
            kernel_jobs_invariance;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "characterization on stock graphs" `Quick
            bloom_characterization;
          Alcotest.test_case "direct membership fp rate" `Quick
            bloom_direct_fp_rate;
        ] );
    ]
