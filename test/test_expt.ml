(* Tests for the experiment harness: tables, sweeps, family specs, the
   registry, and the shared experiment utilities. *)

module Table = Ewalk_expt.Table
module Sweep = Ewalk_expt.Sweep
module Families = Ewalk_expt.Families
module Experiments = Ewalk_expt.Experiments
module Exp_util = Ewalk_expt.Exp_util
module Graph = Ewalk_graph.Graph
module Rng = Ewalk_prng.Rng

(* -- Table ---------------------------------------------------------------- *)

let sample_table =
  {
    Table.id = "demo";
    title = "demo table";
    header = [ "a"; "bb" ];
    rows = [ [ "1"; "2" ]; [ "333"; "4" ] ];
    notes = [ "a note" ];
  }

let table_render () =
  let s = Table.render sample_table in
  Alcotest.(check bool) "has title" true
    (String.length s > 0
    && String.sub s 0 10 = "== demo: d");
  (* All rows rendered. *)
  Alcotest.(check bool) "mentions 333" true
    (String.length s > 0
    &&
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    contains "333" s && contains "a note" s && contains "bb" s)

let table_csv () =
  let csv = Table.to_csv sample_table in
  Alcotest.(check string) "csv" "a,bb\n1,2\n333,4\n" csv

let table_csv_quoting () =
  let t =
    { sample_table with header = [ "x,y"; "q\"q" ]; rows = [ [ "plain"; "b" ] ] }
  in
  let csv = Table.to_csv t in
  Alcotest.(check string) "quoted" "\"x,y\",\"q\"\"q\"\nplain,b\n" csv

let table_cells () =
  Alcotest.(check string) "integer float" "42" (Table.cell_f 42.0);
  Alcotest.(check string) "small" "3.142" (Table.cell_f 3.14159);
  Alcotest.(check string) "scientific" "1.000e-05" (Table.cell_f 1e-5);
  Alcotest.(check string) "int" "7" (Table.cell_i 7);
  Alcotest.(check string) "none" "-" (Table.cell_opt Table.cell_i None);
  Alcotest.(check string) "some" "3" (Table.cell_opt Table.cell_i (Some 3))


let table_markdown () =
  let md = Table.to_markdown sample_table in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "heading" true (contains "### `demo`" md);
  Alcotest.(check bool) "separator" true (contains "|---|---|" md);
  Alcotest.(check bool) "row" true (contains "| 333 | 4 |" md);
  Alcotest.(check bool) "note bullet" true (contains "- a note" md);
  (* Pipes in cells are escaped. *)
  let t = { sample_table with rows = [ [ "a|b"; "c" ] ] } in
  Alcotest.(check bool) "escaped pipe" true
    (contains "a\\|b" (Table.to_markdown t))

(* -- Sweep ---------------------------------------------------------------- *)

let sweep_scales () =
  Alcotest.(check string) "names" "tiny" (Sweep.scale_name Sweep.Tiny);
  List.iter
    (fun scale ->
      Alcotest.(check bool) "non-empty sizes" true
        (List.length (Sweep.cover_sizes scale) > 0
        && List.length (Sweep.edge_sizes scale) > 0
        && List.length (Sweep.spectral_sizes scale) > 0
        && List.length (Sweep.hypercube_dims scale) > 0);
      Alcotest.(check bool) "trials positive" true (Sweep.trials scale > 0))
    [ Sweep.Tiny; Sweep.Default; Sweep.Full ];
  Alcotest.(check int) "paper trials at full" 5 (Sweep.trials Sweep.Full)

let sweep_trial_rngs_deterministic () =
  let stream rng = Array.init 8 (fun _ -> Rng.bits64 rng) in
  let a = Sweep.trial_rngs ~seed:5 ~trials:3 in
  let b = Sweep.trial_rngs ~seed:5 ~trials:3 in
  for i = 0 to 2 do
    Alcotest.(check (array int64)) "same per-trial stream" (stream a.(i))
      (stream b.(i))
  done;
  (* Different trials see different streams. *)
  let c = Sweep.trial_rngs ~seed:5 ~trials:2 in
  Alcotest.(check bool) "trials differ" true
    (stream c.(0) <> stream c.(1))

let sweep_trial_rngs_rejects_nonpositive () =
  Alcotest.check_raises "zero trials"
    (Invalid_argument "Sweep.trial_rngs: trials must be positive (got 0)")
    (fun () -> ignore (Sweep.trial_rngs ~seed:1 ~trials:0));
  Alcotest.check_raises "negative trials"
    (Invalid_argument "Sweep.trial_rngs: trials must be positive (got -3)")
    (fun () -> ignore (Sweep.trial_rngs ~seed:1 ~trials:(-3)));
  Alcotest.check_raises "mean_of_trials inherits the check"
    (Invalid_argument "Sweep.trial_rngs: trials must be positive (got 0)")
    (fun () -> ignore (Sweep.mean_of_trials ~seed:1 ~trials:0 (fun _ -> 0.0)));
  Alcotest.check_raises "mean_cover_of_trials inherits the check"
    (Invalid_argument "Sweep.trial_rngs: trials must be positive (got -1)")
    (fun () ->
      ignore (Sweep.mean_cover_of_trials ~seed:1 ~trials:(-1) (fun _ -> None)))

let sweep_mean_of_trials () =
  let s = Sweep.mean_of_trials ~seed:1 ~trials:4 (fun _ -> 2.5) in
  Alcotest.(check (float 1e-12)) "constant mean" 2.5
    s.Ewalk_analysis.Stats.mean;
  Alcotest.(check int) "count" 4 s.Ewalk_analysis.Stats.count

let sweep_mean_cover () =
  (match Sweep.mean_cover_of_trials ~seed:1 ~trials:3 (fun _ -> Some 10) with
  | Some s ->
      Alcotest.(check (float 1e-12)) "mean" 10.0 s.Ewalk_analysis.Stats.mean
  | None -> Alcotest.fail "all trials succeeded");
  let calls = ref 0 in
  (match
     Sweep.mean_cover_of_trials ~seed:1 ~trials:3 (fun _ ->
         incr calls;
         if !calls = 2 then None else Some 10)
   with
  | Some _ -> Alcotest.fail "a capped trial must poison the mean"
  | None -> ())

(* -- Families ------------------------------------------------------------- *)

let families_all_specs_build () =
  let rng = Rng.create ~seed:1 () in
  List.iter
    (fun spec ->
      let g = Families.build spec rng ~n:64 in
      Alcotest.(check bool) (spec ^ " non-empty") true (Graph.n g > 0))
    [
      "regular:4";
      "torus";
      "grid";
      "hypercube";
      "cycle";
      "double-cycle";
      "complete";
      "margulis";
      "cycle-union:2";
      "chordal";
      "gnp:0.1";
      "geometric:0.3";
      "lollipop";
    ]

let families_bad_specs () =
  let rng = Rng.create () in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Families: unknown spec \"nope\"") (fun () ->
      ignore (Families.build "nope" rng ~n:10));
  Alcotest.check_raises "bad param"
    (Invalid_argument "Families: bad parameter in \"regular:x\"") (fun () ->
      ignore (Families.build "regular:x" rng ~n:10))

let families_known_list () =
  Alcotest.(check bool) "known non-empty" true (List.length Families.known > 5)

(* -- Registry --------------------------------------------------------------- *)

let registry_complete () =
  (* DESIGN.md section 4 lists 27 experiments. *)
  Alcotest.(check int) "27 experiments" 27 (List.length Experiments.all);
  let ids = Experiments.ids () in
  List.iter
    (fun id ->
      match Experiments.find id with
      | Some e -> Alcotest.(check string) "id matches" id e.Experiments.id
      | None -> Alcotest.fail ("missing " ^ id))
    ids;
  Alcotest.(check bool) "unknown id" true (Experiments.find "nope" = None);
  (* Ids are unique. *)
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "unique ids" (List.length ids) (List.length sorted)

let registry_paper_items_nonempty () =
  List.iter
    (fun e ->
      Alcotest.(check bool) "paper item documented" true
        (String.length e.Experiments.paper_item > 0))
    Experiments.all

(* -- Exp_util ----------------------------------------------------------------- *)

let exp_util_cover_helpers () =
  let rng = Rng.create ~seed:2 () in
  let g = Exp_util.regular_graph rng ~n:60 ~d:4 in
  Alcotest.(check bool) "graph shape" true
    (Graph.n g = 60 && Graph.is_simple g);
  (match Exp_util.vertex_cover_eprocess rng g with
  | Some t -> Alcotest.(check bool) "covers fast" true (t >= 59)
  | None -> Alcotest.fail "capped");
  (match Exp_util.edge_cover_eprocess rng g with
  | Some t -> Alcotest.(check bool) "edge cover >= m" true (t >= Graph.m g)
  | None -> Alcotest.fail "capped");
  (match Exp_util.vertex_cover_srw rng g with
  | Some _ -> ()
  | None -> Alcotest.fail "srw capped");
  match Exp_util.edge_cover_srw rng g with
  | Some _ -> ()
  | None -> Alcotest.fail "srw edge capped"

let exp_util_adversaries () =
  let rng = Rng.create ~seed:3 () in
  let g = Exp_util.regular_graph rng ~n:40 ~d:4 in
  List.iter
    (fun adv ->
      let rule = Ewalk.Eprocess.Adversarial adv in
      match Exp_util.vertex_cover_eprocess ~rule rng g with
      | Some _ -> ()
      | None -> Alcotest.fail "adversarial run capped")
    [ Exp_util.adversary_stay_explored; Exp_util.adversary_min_blue ]

(* -- Wall-time regression guards --------------------------------------------- *)

let spectral_p1_tiny_fast () =
  (* spectral-p1 at Tiny once took ~10s because the dense O(n^3) Jacobi
     eigensolver handled the lambda_2 probe; the Lanczos route brings it
     under half a second.  Guard the fix: the budget below is ~10x the
     fixed cost and well under the regressed cost, so it trips if the
     dense path ever comes back without drowning CI in flakiness. *)
  match Experiments.find "spectral-p1" with
  | None -> Alcotest.fail "spectral-p1 missing from registry"
  | Some e ->
      let table, seconds =
        Experiments.run_timed e ~scale:Sweep.Tiny ~seed:7
      in
      Alcotest.(check bool) "produces rows" true
        (List.length table.Table.rows > 0);
      Alcotest.(check bool)
        (Printf.sprintf "tiny run under budget (took %.2fs)" seconds)
        true (seconds < 5.0)

let () =
  Alcotest.run "expt"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "csv" `Quick table_csv;
          Alcotest.test_case "csv quoting" `Quick table_csv_quoting;
          Alcotest.test_case "cells" `Quick table_cells;
          Alcotest.test_case "markdown" `Quick table_markdown;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "scales" `Quick sweep_scales;
          Alcotest.test_case "trial rngs" `Quick sweep_trial_rngs_deterministic;
          Alcotest.test_case "trial rngs reject nonpositive" `Quick
            sweep_trial_rngs_rejects_nonpositive;
          Alcotest.test_case "mean of trials" `Quick sweep_mean_of_trials;
          Alcotest.test_case "mean cover poisoning" `Quick sweep_mean_cover;
        ] );
      ( "families",
        [
          Alcotest.test_case "all specs" `Quick families_all_specs_build;
          Alcotest.test_case "bad specs" `Quick families_bad_specs;
          Alcotest.test_case "known list" `Quick families_known_list;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick registry_complete;
          Alcotest.test_case "paper items" `Quick registry_paper_items_nonempty;
        ] );
      ( "exp_util",
        [
          Alcotest.test_case "cover helpers" `Quick exp_util_cover_helpers;
          Alcotest.test_case "adversaries" `Quick exp_util_adversaries;
        ] );
      ( "perf",
        [
          Alcotest.test_case "spectral-p1 tiny wall-time" `Slow
            spectral_p1_tiny_fast;
        ] );
    ]
