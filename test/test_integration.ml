(* Integration tests: every registered experiment runs end-to-end at tiny
   scale and produces a non-degenerate table; plus cross-module pipelines
   that mirror the paper's top-level claims at small n. *)

module Graph = Ewalk_graph.Graph
module Gen_regular = Ewalk_graph.Gen_regular
module Cover = Ewalk.Cover
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Rng = Ewalk_prng.Rng
module Experiments = Ewalk_expt.Experiments
module Table = Ewalk_expt.Table

let run_experiment_test entry () =
  let table =
    entry.Experiments.run ~pool:None ~scale:Ewalk_expt.Sweep.Tiny ~seed:2
  in
  Alcotest.(check string) "id propagated" entry.Experiments.id
    table.Table.id;
  Alcotest.(check bool) "has rows" true (List.length table.Table.rows > 0);
  Alcotest.(check bool) "has header" true (List.length table.Table.header > 0);
  (* Every row has exactly as many cells as the header. *)
  let width = List.length table.Table.header in
  List.iter
    (fun row -> Alcotest.(check int) "row width" width (List.length row))
    table.Table.rows;
  (* Rendering and CSV never raise and are non-empty. *)
  Alcotest.(check bool) "renders" true (String.length (Table.render table) > 0);
  Alcotest.(check bool) "csv" true (String.length (Table.to_csv table) > 0)

let experiment_cases =
  List.map
    (fun e ->
      Alcotest.test_case e.Experiments.id `Slow (run_experiment_test e))
    Experiments.all

(* -- end-to-end claims ------------------------------------------------------- *)

(* Corollary 2 at small n: the E-process covers random 4-regular graphs well
   within the Theorem 1 envelope, and faster than the SRW. *)
let headline_speedup () =
  let n = 600 in
  let trials = 5 in
  let e_total = ref 0 and s_total = ref 0 in
  for seed = 1 to trials do
    let rng = Rng.create ~seed () in
    let g = Gen_regular.random_regular_connected rng n 4 in
    (match
       Cover.run_until_vertex_cover ~cap:(Cover.default_cap g)
         (Eprocess.process (Eprocess.create g rng ~start:0))
     with
    | Some t -> e_total := !e_total + t
    | None -> Alcotest.fail "e-process capped");
    match
      Cover.run_until_vertex_cover ~cap:(Cover.default_cap g)
        (Srw.process (Srw.create g rng ~start:0))
    with
    | Some t -> s_total := !s_total + t
    | None -> Alcotest.fail "srw capped"
  done;
  let e_mean = float_of_int !e_total /. float_of_int trials in
  let s_mean = float_of_int !s_total /. float_of_int trials in
  (* E-process within a small constant of n. *)
  Alcotest.(check bool)
    (Printf.sprintf "e-process %.0f <= 4 n" e_mean)
    true
    (e_mean <= 4.0 *. float_of_int n);
  (* And at least the trivial bound. *)
  Alcotest.(check bool) "above n-1" true (e_mean >= float_of_int (n - 1));
  (* SRW above the Radzik lower bound (Theorem 5). *)
  Alcotest.(check bool)
    (Printf.sprintf "srw %.0f above Radzik" s_mean)
    true
    (s_mean >= Ewalk_theory.Bounds.radzik_lower_bound ~n);
  (* The headline: a clear speed-up. *)
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.1fx" (s_mean /. e_mean))
    true
    (s_mean /. e_mean > 2.0)

(* The Theorem 1 envelope with measured quantities: gap from the spectral
   module, ell from the goodness module, both feeding the bound formula. *)
let theorem1_envelope_measured () =
  let rng = Rng.create ~seed:9 () in
  let g = Gen_regular.random_regular_connected rng 200 4 in
  let gap = Ewalk_spectral.Spectral.spectral_gap g in
  Alcotest.(check bool) "expander gap" true (gap > 0.05);
  (* Certified ell lower bound over all vertices with a modest radius. *)
  let ell = ref max_int in
  for v = 0 to Graph.n g - 1 do
    let b = Ewalk_analysis.Goodness.ell_of_vertex g v ~max_len:6 in
    if b.Ewalk_analysis.Goodness.lower < !ell then
      ell := b.Ewalk_analysis.Goodness.lower
  done;
  Alcotest.(check bool) "nontrivial ell" true (!ell >= 3);
  let bound =
    Ewalk_theory.Bounds.theorem1_vertex_cover ~c:20.0 ~ell:!ell ~gap
      (Graph.n g)
  in
  match
    Cover.run_until_vertex_cover ~cap:(Cover.default_cap g)
      (Eprocess.process (Eprocess.create g rng ~start:0))
  with
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "measured %d within envelope %.0f" t bound)
        true
        (float_of_int t <= bound)
  | None -> Alcotest.fail "capped"

(* Observation 12 pipeline at integration level: C_E within the sandwich for
   a fresh graph + walk pair measured by independent modules. *)
let sandwich_pipeline () =
  let rng = Rng.create ~seed:10 () in
  let g = Gen_regular.random_regular_connected rng 300 4 in
  let ep = Eprocess.create g rng ~start:0 in
  let ce =
    match Cover.run_until_edge_cover ~cap:(Cover.default_cap g) (Eprocess.process ep) with
    | Some t -> t
    | None -> Alcotest.fail "capped"
  in
  Alcotest.(check bool) "m <= C_E" true (ce >= Graph.m g);
  let srw_cv =
    match
      Cover.run_until_vertex_cover ~cap:(Cover.default_cap g)
        (Srw.process (Srw.create g rng ~start:0))
    with
    | Some t -> t
    | None -> Alcotest.fail "srw capped"
  in
  (* The sandwich holds in expectation; at n=300 allow slack of 3x on a
     single sample pair. *)
  Alcotest.(check bool) "C_E within 3 (m + C_V(SRW))" true
    (float_of_int ce
    <= 3.0
       *. Ewalk_theory.Bounds.edge_cover_sandwich_upper ~m:(Graph.m g)
            ~srw_vertex_cover:(float_of_int srw_cv))

(* The CLI's process specs cover every walk implementation; drive each once
   through the Families + processes path used by bin/eproc. *)
let families_times_processes () =
  let rng = Rng.create ~seed:11 () in
  let g = Ewalk_expt.Families.build "torus" rng ~n:36 in
  List.iter
    (fun p ->
      match Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) (p g rng) with
      | Some _ -> ()
      | None -> Alcotest.fail "process capped on a 6x6 torus")
    [
      (fun g rng -> Eprocess.process (Eprocess.create g rng ~start:0));
      (fun g rng -> Srw.process (Srw.create g rng ~start:0));
      (fun g rng -> Srw.process (Srw.create_lazy g rng ~start:0));
      (fun g rng -> Ewalk.Rotor.process (Ewalk.Rotor.create g rng ~start:0));
      (fun g rng -> Ewalk.Rwc.process (Ewalk.Rwc.create ~d:3 g rng ~start:0));
      (fun g rng ->
        Ewalk.Fair.process
          (Ewalk.Fair.create ~strategy:Ewalk.Fair.Least_used_first g rng
             ~start:0));
      (fun g rng ->
        Ewalk.Fair.process
          (Ewalk.Fair.create ~strategy:Ewalk.Fair.Oldest_first g rng ~start:0));
      (fun g rng -> Ewalk.Vprocess.process (Ewalk.Vprocess.create g rng ~start:0));
    ]

let () =
  Alcotest.run "integration"
    [
      ("experiments-tiny", experiment_cases);
      ( "claims",
        [
          Alcotest.test_case "headline speed-up" `Slow headline_speedup;
          Alcotest.test_case "theorem 1 envelope" `Slow
            theorem1_envelope_measured;
          Alcotest.test_case "sandwich pipeline" `Slow sandwich_pipeline;
          Alcotest.test_case "families x processes" `Quick
            families_times_processes;
        ] );
    ]
