(* Tests for the batched multi-walker lockstep kernel (Ewalk_kernel):
   the packed PRNG bank, W=1 bit-identity with the legacy single-walker
   processes, cooperating/competing semantics, the differential battery
   against the naive oracle at several job counts, parallel run
   equivalence, checkpoint round-trips, and the mutation-kill battery
   proving the checkers catch deliberately broken kernels. *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Gen_random = Ewalk_graph.Gen_random
module Traversal = Ewalk_graph.Traversal
module Rng = Ewalk_prng.Rng
module Trace = Ewalk_obs.Trace
module Pool = Ewalk_par.Pool
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Rotor = Ewalk.Rotor
module Cover = Ewalk.Cover
module Coverage = Ewalk.Coverage
module Engine = Ewalk_kernel.Engine
module Packed = Ewalk_kernel.Packed
module Team = Ewalk_kernel.Team
module Invariant = Ewalk_check.Invariant
module Oracle = Ewalk_check.Oracle
module Differential = Ewalk_check.Differential

let qcheck = QCheck_alcotest.to_alcotest

let fixture_regular =
  lazy
    (let rng = Rng.create ~seed:4242 () in
     Gen_regular.random_regular_connected rng 48 4)

(* -- Packed PRNG bank -------------------------------------------------------- *)

(* The bank must replicate [Rng.stream root w] draw for draw: walker 0 is
   the root's own state, walker w > 0 a splitmix-jumped stream. *)
let packed_matches_streams () =
  let root = Rng.create ~seed:91 () in
  let bank = Packed.of_rng root ~walkers:4 in
  let refs = Array.init 4 (fun w -> Rng.stream root w) in
  Alcotest.(check int) "walkers" 4 (Packed.walkers bank);
  for round = 0 to 63 do
    for w = 0 to 3 do
      Alcotest.(check int64)
        (Printf.sprintf "bits64 w=%d round=%d" w round)
        (Rng.bits64 refs.(w))
        (Packed.bits64 bank w);
      (* Mix in bounded draws: powers of two take the mask path, others
         the 63-bit rejection path — both must consume identically. *)
      let bound = [| 7; 8; 3; 100 |].(round mod 4) in
      Alcotest.(check int)
        (Printf.sprintf "int w=%d round=%d" w round)
        (Rng.int refs.(w) bound)
        (Packed.int bank w bound)
    done
  done

let packed_root_not_advanced () =
  let root = Rng.create ~seed:17 () in
  let before = Rng.save root in
  let (_ : Packed.t) = Packed.of_rng root ~walkers:8 in
  Alcotest.(check (array int64)) "root untouched" before (Rng.save root)

let packed_save_restore () =
  let root = Rng.create ~seed:5 () in
  let bank = Packed.of_rng root ~walkers:3 in
  for w = 0 to 2 do
    ignore (Packed.bits64 bank w)
  done;
  let words = Packed.save bank in
  Alcotest.(check int) "4 words per walker" 12 (Array.length words);
  let bank' = Packed.restore ~walkers:3 words in
  for w = 0 to 2 do
    for _ = 0 to 9 do
      Alcotest.(check int64) "restored stream" (Packed.bits64 bank w)
        (Packed.bits64 bank' w)
    done
  done

let packed_rng_of_walker () =
  let root = Rng.create ~seed:23 () in
  let bank = Packed.of_rng root ~walkers:2 in
  ignore (Packed.bits64 bank 1);
  let snap = Packed.rng_of_walker bank 1 in
  (* The snapshot must predict the walker's future draws without
     advancing the bank. *)
  let predicted = Array.init 5 (fun _ -> Rng.bits64 snap) in
  Array.iteri
    (fun i p ->
      Alcotest.(check int64)
        (Printf.sprintf "draw %d" i)
        p (Packed.bits64 bank 1))
    predicted

let prop_packed_equals_streams =
  QCheck.Test.make ~name:"packed bank replicates Rng.stream draws" ~count:50
    QCheck.(pair (int_range 1 9) (int_range 0 9999))
    (fun (walkers, seed) ->
      let root = Rng.create ~seed () in
      let bank = Packed.of_rng root ~walkers in
      let refs = Array.init walkers (fun w -> Rng.stream root w) in
      let ok = ref true in
      for i = 0 to 99 do
        let w = i mod walkers in
        let bound = 1 + (i * 7 mod 97) in
        if Packed.int bank w bound <> Rng.int refs.(w) bound then ok := false
      done;
      !ok)

(* -- Rng.stream derivation --------------------------------------------------- *)

let stream_distinct_and_pure () =
  let root = Rng.create ~seed:7 () in
  let before = Rng.save root in
  let streams = Array.init 8 (fun i -> Rng.stream root i) in
  Alcotest.(check (array int64)) "stream does not advance root" before
    (Rng.save root);
  Alcotest.(check (array int64)) "stream 0 = parent state" before
    (Rng.save streams.(0));
  (* Pairwise-distinct states: a kernel must never hand two walkers the
     same stream (the Team re-seeding regression). *)
  for i = 0 to 7 do
    for j = i + 1 to 7 do
      Alcotest.(check bool)
        (Printf.sprintf "streams %d and %d distinct" i j)
        false
        (Rng.save streams.(i) = Rng.save streams.(j))
    done
  done

(* -- W=1 bit-identity with the legacy processes ------------------------------ *)

(* Run a legacy single-walker process and a one-walker cooperating engine
   from identical RNG states and compare everything: the cover step, the
   full per-step event stream (Step and Phase boundaries), final
   position, step counters, and the visited-edge flags. *)
let collect_legacy_events set_observer run =
  let evs = ref [] in
  set_observer (Some (fun ev -> evs := ev :: !evs));
  let res = run () in
  (res, List.rev !evs)

let collect_engine_events eng run =
  let evs = ref [] in
  Engine.set_observer eng (Some (fun ~walker:_ ev -> evs := ev :: !evs));
  let res = run () in
  (res, List.rev !evs)

let event_list =
  Alcotest.testable
    (fun fmt ev -> Format.pp_print_string fmt (Trace.event_to_string ev))
    ( = )

let check_w1_identity ~name g ~seed proc =
  let start = 0 in
  let legacy_rng = Rng.create ~seed () in
  let engine_rng = Rng.create ~seed () in
  let legacy_cover, legacy_evs, legacy_pos, legacy_steps, legacy_cov =
    match proc with
    | Engine.E_uar | Engine.E_lowest | Engine.E_highest ->
        let rule =
          match proc with
          | Engine.E_uar -> Eprocess.Uar
          | Engine.E_lowest -> Eprocess.Lowest_slot
          | _ -> Eprocess.Highest_slot
        in
        let p = Eprocess.create ~rule g legacy_rng ~start in
        let cover, evs =
          collect_legacy_events (Eprocess.set_observer p) (fun () ->
              Cover.run_until_vertex_cover (Eprocess.process p))
        in
        (cover, evs, Eprocess.position p, Eprocess.steps p, Eprocess.coverage p)
    | Engine.Srw ->
        let p = Srw.create g legacy_rng ~start in
        let cover, evs =
          collect_legacy_events (Srw.set_observer p) (fun () ->
              Cover.run_until_vertex_cover (Srw.process p))
        in
        (cover, evs, Srw.position p, Srw.steps p, Srw.coverage p)
    | Engine.Rotor ->
        let p = Rotor.create ~randomize_rotors:true g legacy_rng ~start in
        let cover, evs =
          collect_legacy_events (Rotor.set_observer p) (fun () ->
              Cover.run_until_vertex_cover (Rotor.process p))
        in
        (cover, evs, Rotor.position p, Rotor.steps p, Rotor.coverage p)
  in
  let eng = Engine.create proc g engine_rng ~starts:[| start |] in
  let eng_cover, eng_evs =
    collect_engine_events eng (fun () ->
        Cover.run_until_vertex_cover (Engine.process eng))
  in
  Alcotest.(check (option int)) (name ^ ": cover step") legacy_cover eng_cover;
  Alcotest.(check (list event_list)) (name ^ ": event stream") legacy_evs
    eng_evs;
  Alcotest.(check int) (name ^ ": position") legacy_pos (Engine.position eng);
  Alcotest.(check int) (name ^ ": steps") legacy_steps (Engine.steps eng);
  Alcotest.(check (array bool))
    (name ^ ": visited edges")
    (Coverage.visited_edge_flags legacy_cov)
    (Coverage.visited_edge_flags (Engine.coverage eng))

let w1_identity_euar () =
  check_w1_identity ~name:"e-uar" (Lazy.force fixture_regular) ~seed:11
    Engine.E_uar

let w1_identity_elowest () =
  check_w1_identity ~name:"e-lowest" (Lazy.force fixture_regular) ~seed:12
    Engine.E_lowest

let w1_identity_ehighest () =
  check_w1_identity ~name:"e-highest" (Lazy.force fixture_regular) ~seed:13
    Engine.E_highest

let w1_identity_srw () =
  check_w1_identity ~name:"srw" (Gen_classic.hypercube 4) ~seed:14 Engine.Srw

let w1_identity_rotor () =
  check_w1_identity ~name:"rotor" (Lazy.force fixture_regular) ~seed:15
    Engine.Rotor;
  (* Rotor offsets after the run: engine vs legacy, vertex by vertex. *)
  let g = Gen_classic.hypercube 3 in
  let p = Rotor.create ~randomize_rotors:true g (Rng.create ~seed:15 ()) ~start:0 in
  let eng =
    Engine.create Engine.Rotor g (Rng.create ~seed:15 ()) ~starts:[| 0 |]
  in
  for _ = 1 to 100 do
    Rotor.step p;
    Engine.step eng
  done;
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check int)
      (Printf.sprintf "rotor offset at %d" v)
      (Rotor.rotor_offset p v) (Engine.rotor_offset eng v)
  done

(* A W=1 engine on every process, on generated graphs, shrunk by QCheck
   toward a minimal divergence if one exists. *)
let prop_w1_equals_legacy =
  QCheck.Test.make ~name:"W=1 kernel equals legacy walk on generated graphs"
    ~count:30
    QCheck.(
      quad (int_range 0 4) (int_range 0 4) (int_range 8 32) (int_range 0 999))
    (fun (fam, proc_i, size, seed) ->
      let grng = Rng.create ~seed:(1 + (seed * 3) + fam) () in
      let g =
        match fam with
        | 0 -> Gen_regular.random_regular_connected grng (max 10 size) 4
        | 1 ->
            let s = max 10 size in
            let s = if s mod 2 = 1 then s + 1 else s in
            Gen_regular.random_regular_connected grng s 3
        | 2 -> Gen_classic.hypercube (3 + (size mod 2))
        | 3 -> Gen_classic.lollipop (4 + (size mod 5)) (4 + (seed mod 5))
        | _ -> Gen_random.gnp grng (max 8 size) 0.3
      in
      QCheck.assume (Graph.n g > 0 && Graph.min_degree g > 0);
      QCheck.assume (Traversal.is_connected g);
      let proc =
        [| Engine.E_uar; Engine.E_lowest; Engine.E_highest; Engine.Srw;
           Engine.Rotor |].(proc_i)
      in
      let legacy_cover, legacy_pos, legacy_steps =
        let rng = Rng.create ~seed () in
        match proc with
        | Engine.E_uar | Engine.E_lowest | Engine.E_highest ->
            let rule =
              match proc with
              | Engine.E_uar -> Eprocess.Uar
              | Engine.E_lowest -> Eprocess.Lowest_slot
              | _ -> Eprocess.Highest_slot
            in
            let p = Eprocess.create ~rule g rng ~start:0 in
            let c = Cover.run_until_vertex_cover (Eprocess.process p) in
            (c, Eprocess.position p, Eprocess.steps p)
        | Engine.Srw ->
            let p = Srw.create g rng ~start:0 in
            let c = Cover.run_until_vertex_cover (Srw.process p) in
            (c, Srw.position p, Srw.steps p)
        | Engine.Rotor ->
            let p = Rotor.create ~randomize_rotors:true g rng ~start:0 in
            let c = Cover.run_until_vertex_cover (Rotor.process p) in
            (c, Rotor.position p, Rotor.steps p)
      in
      let eng =
        Engine.create proc g (Rng.create ~seed ()) ~starts:[| 0 |]
      in
      let eng_cover = Cover.run_until_vertex_cover (Engine.process eng) in
      if
        legacy_cover <> eng_cover
        || legacy_pos <> Engine.position eng
        || legacy_steps <> Engine.steps eng
      then
        QCheck.Test.fail_reportf
          "divergence (n=%d m=%d proc=%d): legacy cover=%s pos=%d steps=%d, \
           kernel cover=%s pos=%d steps=%d"
          (Graph.n g) (Graph.m g) proc_i
          (match legacy_cover with None -> "-" | Some c -> string_of_int c)
          legacy_pos legacy_steps
          (match eng_cover with None -> "-" | Some c -> string_of_int c)
          (Engine.position eng) (Engine.steps eng)
      else true)

(* -- cooperating-mode semantics ---------------------------------------------- *)

(* Shared coverage is exactly the union of the starts and every vertex
   any walker stepped onto — monotone along the way.  Exact set equality
   gives both directions: the shared set is a superset of any single
   member's trail, and contains nothing no walker produced. *)
let prop_coop_coverage_union =
  QCheck.Test.make ~name:"cooperating coverage = union of member trails"
    ~count:30
    QCheck.(triple (int_range 1 6) (int_range 10 40) (int_range 0 999))
    (fun (walkers, size, seed) ->
      let grng = Rng.create ~seed:(size + seed) () in
      let g = Gen_regular.random_regular_connected grng size 4 in
      QCheck.assume (Traversal.is_connected g);
      let rng = Rng.create ~seed () in
      let eng = Engine.create_spread Engine.E_uar g rng ~walkers in
      let seen = Array.make (Graph.n g) false in
      Array.iter (fun v -> seen.(v) <- true) (Engine.positions eng);
      let monotone = ref true in
      let last = ref (Coverage.vertices_visited (Engine.coverage eng)) in
      Engine.set_observer eng
        (Some
           (fun ~walker:_ ev ->
             match ev with
             | Trace.Step { vertex; _ } -> seen.(vertex) <- true
             | _ -> ()));
      for _ = 1 to 20 * Graph.n g do
        Engine.step eng;
        let now = Coverage.vertices_visited (Engine.coverage eng) in
        if now < !last then monotone := false;
        last := now
      done;
      let cov = Engine.coverage eng in
      let union_ok = ref true in
      for v = 0 to Graph.n g - 1 do
        if Coverage.vertex_visited cov v <> seen.(v) then union_ok := false
      done;
      if not !monotone then QCheck.Test.fail_report "coverage regressed";
      if not !union_ok then
        QCheck.Test.fail_report "shared coverage <> union of member trails";
      true)

(* Walker step counters partition the global clock, and blue + red =
   total per walker. *)
let coop_counters_partition () =
  let g = Lazy.force fixture_regular in
  let eng =
    Engine.create_spread Engine.E_uar g (Rng.create ~seed:3 ()) ~walkers:5
  in
  Engine.run_rounds eng 40;
  let total = ref 0 in
  for w = 0 to 4 do
    total := !total + Engine.walker_steps eng w;
    Alcotest.(check int) "blue+red=steps"
      (Engine.walker_steps eng w)
      (Engine.walker_blue_steps eng w + Engine.walker_red_steps eng w)
  done;
  Alcotest.(check int) "walker steps partition the clock" (Engine.steps eng)
    !total;
  Alcotest.(check int) "round-robin balance" 40 (Engine.rounds eng)

(* -- differential battery ---------------------------------------------------- *)

(* The stock kernel battery (engine vs naive oracle, all five processes,
   both modes) must pass, and the report must be identical at jobs=1 and
   jobs=4.  EWALK_KERNEL_FULL=1 widens to the full 3-seed, W<=17 matrix
   (the `make test-kernel` configuration). *)
let kernel_cases () =
  if Sys.getenv_opt "EWALK_KERNEL_FULL" <> None then
    Differential.stock_kernel_cases ()
  else Differential.stock_kernel_cases ~walkers:[ 1; 4 ] ~seeds:[ 1 ] ()

let fail_lines failures =
  String.concat "\n" (List.map (fun (n, m) -> n ^ ": " ^ m) failures)

let kernel_battery_jobs_agree () =
  let cases = kernel_cases () in
  let r1 = Differential.run_kernel_suite ~jobs:1 cases in
  if r1.Differential.failures <> [] then
    Alcotest.failf "kernel battery (jobs=1):\n%s"
      (fail_lines r1.Differential.failures);
  let r4 = Differential.run_kernel_suite ~jobs:4 cases in
  if r4.Differential.failures <> [] then
    Alcotest.failf "kernel battery (jobs=4):\n%s"
      (fail_lines r4.Differential.failures);
  Alcotest.(check string) "reports identical across job counts"
    (Differential.report_line r1)
    (Differential.report_line r4);
  Alcotest.(check int) "case count" (List.length cases) r1.Differential.cases

(* W=17 exceeds the hypercube-4 vertex count on purpose: more walkers
   than vertices is legal and must still agree with the oracle. *)
let kernel_battery_w17_smoke () =
  let cases =
    List.filter
      (fun c -> c.Differential.k_label = "hypercube4")
      (Differential.stock_kernel_cases ~walkers:[ 17 ] ~seeds:[ 2 ] ())
  in
  Alcotest.(check bool) "cases exist" true (cases <> []);
  let r = Differential.run_kernel_suite ~jobs:2 cases in
  if r.Differential.failures <> [] then
    Alcotest.failf "W=17 battery:\n%s" (fail_lines r.Differential.failures)

(* -- parallel run equivalence ------------------------------------------------ *)

(* Competing walkers own disjoint state slices, so run_rounds over a pool
   must land bit-identically on the sequential result. *)
let competing_pool_equals_sequential () =
  let g = Lazy.force fixture_regular in
  let mk () =
    Engine.create_spread ~mode:Engine.Competing Engine.E_uar g
      (Rng.create ~seed:77 ()) ~walkers:8
  in
  let seq = mk () and par = mk () in
  Engine.run_rounds seq 150;
  Pool.with_pool ~jobs:4 (fun pool -> Engine.run_rounds ~pool par 150);
  Alcotest.(check (array int)) "positions" (Engine.positions seq)
    (Engine.positions par);
  for w = 0 to 7 do
    Alcotest.(check int) "steps" (Engine.walker_steps seq w)
      (Engine.walker_steps par w);
    Alcotest.(check int) "blue" (Engine.walker_blue_steps seq w)
      (Engine.walker_blue_steps par w);
    Alcotest.(check int) "vertices" (Engine.walker_vertices_visited seq w)
      (Engine.walker_vertices_visited par w);
    Alcotest.(check int) "edges" (Engine.walker_edges_visited seq w)
      (Engine.walker_edges_visited par w);
    Alcotest.(check (option int)) "cover step" (Engine.walker_cover_step seq w)
      (Engine.walker_cover_step par w);
    for e = 0 to Graph.m g - 1 do
      if Engine.walker_edge_visited seq w e <> Engine.walker_edge_visited par w e
      then Alcotest.failf "visited-set mismatch: walker %d edge %d" w e
    done
  done

(* -- mutation kills ---------------------------------------------------------- *)

(* A kernel that skips the unvisited-edge preference must be caught by
   the invariant monitor as a Preference violation. *)
let mutation_skip_preference_killed () =
  let g = Lazy.force fixture_regular in
  let eng = Engine.create Engine.E_uar g (Rng.create ~seed:21 ()) ~starts:[| 0 |] in
  Engine.set_fault eng (Some Engine.Skip_preference);
  let monitor = Invariant.create g ~start:0 in
  let first = ref None in
  Engine.set_observer eng
    (Some
       (fun ~walker:_ ev ->
         match ev with
         | Trace.Step { step; vertex; edge; blue } ->
             let v = Invariant.on_step monitor ~step ~vertex ~edge ~blue in
             if !first = None then first := v
         | _ -> ()));
  (let i = ref 0 in
   while !first = None && !i < 200 do
     Engine.step eng;
     incr i
   done);
  match !first with
  | None -> Alcotest.fail "Skip_preference escaped the monitor"
  | Some v ->
      Alcotest.(check string) "violation kind"
        (Invariant.kind_name Invariant.Preference)
        (Invariant.kind_name v.Invariant.v_kind)

(* A torn struct-of-arrays update (walker w's new position written to
   walker w+1's slot) breaks per-walker trajectory continuity: some
   walker's stream reports an edge not incident to where that walker
   stands.  Per-walker monitors over the competing engine must flag it
   as Edge_invalid. *)
let mutation_torn_soa_killed () =
  let g = Lazy.force fixture_regular in
  let starts = [| 0; Graph.n g / 2; 1; (Graph.n g / 2) + 7 |] in
  let eng =
    Engine.create ~mode:Engine.Competing Engine.E_uar g
      (Rng.create ~seed:31 ()) ~starts
  in
  Engine.set_fault eng (Some Engine.Torn_soa);
  let monitors =
    Array.map (fun s -> Invariant.create g ~start:s) starts
  in
  let caught = ref None in
  Engine.set_observer eng
    (Some
       (fun ~walker ev ->
         match ev with
         | Trace.Step { step; vertex; edge; blue } ->
             let v = Invariant.on_step monitors.(walker) ~step ~vertex ~edge ~blue in
             if !caught = None then caught := v
         | _ -> ()));
  (let i = ref 0 in
   while !caught = None && !i < 400 do
     Engine.step eng;
     incr i
   done);
  match !caught with
  | None -> Alcotest.fail "Torn_soa escaped the per-walker monitors"
  | Some v ->
      Alcotest.(check string) "violation kind"
        (Invariant.kind_name Invariant.Edge_invalid)
        (Invariant.kind_name v.Invariant.v_kind)

(* Reusing walker 0's PRNG word for every walker desynchronises walkers
   1.. from their oracle streams — the lockstep differential must see the
   positions diverge. *)
let mutation_reuse_prng_killed () =
  let g = Lazy.force fixture_regular in
  let starts = [| 0; 12; 24; 36 |] in
  let eng =
    Engine.create ~mode:Engine.Competing Engine.E_uar g
      (Rng.create ~seed:41 ()) ~starts
  in
  Engine.set_fault eng (Some Engine.Reuse_prng_word);
  let orc =
    Oracle.Kernel.create ~mode:Oracle.Kernel.Competing Oracle.Kernel.E_uar g
      (Rng.create ~seed:41 ()) ~starts
  in
  let diverged = ref false in
  let i = ref 0 in
  while (not !diverged) && !i < 800 do
    Engine.step eng;
    Oracle.Kernel.step orc;
    for w = 0 to 3 do
      if Engine.walker_position eng w <> Oracle.Kernel.walker_position orc w
      then diverged := true
    done;
    incr i
  done;
  Alcotest.(check bool) "lockstep divergence detected" true !diverged

(* Sanity for the battery itself: an unfaulted engine does NOT diverge
   over the same horizon — the kill above is the fault's doing. *)
let mutation_control_clean () =
  let g = Lazy.force fixture_regular in
  let starts = [| 0; 12; 24; 36 |] in
  let eng =
    Engine.create ~mode:Engine.Competing Engine.E_uar g
      (Rng.create ~seed:41 ()) ~starts
  in
  let orc =
    Oracle.Kernel.create ~mode:Oracle.Kernel.Competing Oracle.Kernel.E_uar g
      (Rng.create ~seed:41 ()) ~starts
  in
  for _ = 1 to 800 do
    Engine.step eng;
    Oracle.Kernel.step orc
  done;
  for w = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "walker %d in lockstep" w)
      (Oracle.Kernel.walker_position orc w)
      (Engine.walker_position eng w)
  done

(* -- Team per-walker streams (regression) ------------------------------------ *)

(* Team walkers must draw from per-walker derived streams, never a shared
   or trial-index-reseeded one: the packed bank's walker slices have to
   be pairwise distinct at creation. *)
let team_walker_streams_distinct () =
  let g = Lazy.force fixture_regular in
  let team = Team.create_spread g (Rng.create ~seed:6 ()) ~walkers:4 in
  let ck = Engine.checkpoint (Team.engine team) in
  let words = ck.Engine.ck_prng in
  Alcotest.(check int) "4 words per walker" 16 (Array.length words);
  let slice w = Array.sub words (4 * w) 4 in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "walkers %d,%d share a stream" i j)
        false
        (slice i = slice j)
    done
  done;
  (* And two teams from different root seeds must not collide either. *)
  let team' = Team.create_spread g (Rng.create ~seed:7 ()) ~walkers:4 in
  let words' = (Engine.checkpoint (Team.engine team')).Engine.ck_prng in
  Alcotest.(check bool) "teams differ" false (words = words')

(* -- checkpoint / resume ----------------------------------------------------- *)

(* Stop a cooperating W=4 run at step 100, continue both the original and
   a restored copy for 200 more steps: the event tails and the full final
   checkpoints must match bit for bit. *)
let checkpoint_roundtrip_bit_identical () =
  let g = Lazy.force fixture_regular in
  let eng =
    Engine.create_spread Engine.E_uar g (Rng.create ~seed:55 ()) ~walkers:4
  in
  for _ = 1 to 100 do
    Engine.step eng
  done;
  let ck = Engine.checkpoint eng in
  let resumed = Engine.of_checkpoint g ck in
  Alcotest.(check int) "restored clock" (Engine.steps eng)
    (Engine.steps resumed);
  Alcotest.(check int) "restored cursor" (Engine.cursor eng)
    (Engine.cursor resumed);
  let run e =
    collect_engine_events e (fun () ->
        for _ = 1 to 200 do
          Engine.step e
        done)
  in
  let (), evs_orig = run eng in
  let (), evs_res = run resumed in
  Alcotest.(check (list event_list)) "continuation event tails" evs_orig
    evs_res;
  Alcotest.(check bool) "final checkpoints identical" true
    (Engine.checkpoint eng = Engine.checkpoint resumed)

let checkpoint_rejects_corruption () =
  let g = Lazy.force fixture_regular in
  let eng =
    Engine.create_spread Engine.E_uar g (Rng.create ~seed:56 ()) ~walkers:3
  in
  Engine.run_rounds eng 10;
  let ck = Engine.checkpoint eng in
  let bad_cursor = { ck with Engine.ck_cursor = 9 } in
  Alcotest.check_raises "cursor out of range"
    (Invalid_argument "Engine.of_checkpoint: cursor out of range") (fun () ->
      ignore (Engine.of_checkpoint g bad_cursor));
  let wsteps = Array.copy ck.Engine.ck_wsteps in
  wsteps.(0) <- wsteps.(0) + 1;
  let bad_steps = { ck with Engine.ck_wsteps = wsteps } in
  Alcotest.check_raises "inconsistent counters"
    (Invalid_argument "Engine.of_checkpoint: inconsistent step counters")
    (fun () -> ignore (Engine.of_checkpoint g bad_steps));
  let competing =
    Engine.create_spread ~mode:Engine.Competing Engine.E_uar g
      (Rng.create ~seed:57 ()) ~walkers:2
  in
  Alcotest.check_raises "competing needs checkpoint_competing"
    (Invalid_argument
       "Engine.checkpoint: competing mode carries per-walker bitsets; use \
        checkpoint_competing") (fun () -> ignore (Engine.checkpoint competing))

(* -- argument validation ----------------------------------------------------- *)

let create_validation () =
  let g = Gen_classic.cycle 5 in
  let rng () = Rng.create ~seed:1 () in
  Alcotest.check_raises "no walkers"
    (Invalid_argument "Engine.create: no walkers") (fun () ->
      ignore (Engine.create Engine.E_uar g (rng ()) ~starts:[||]));
  Alcotest.check_raises "start out of range"
    (Invalid_argument "Engine.create: start out of range") (fun () ->
      ignore (Engine.create Engine.E_uar g (rng ()) ~starts:[| 5 |]));
  Alcotest.check_raises "spread walkers < 1"
    (Invalid_argument "Engine.create_spread: walkers < 1") (fun () ->
      ignore (Engine.create_spread Engine.E_uar g (rng ()) ~walkers:0));
  let competing =
    Engine.create ~mode:Engine.Competing Engine.E_uar g (rng ())
      ~starts:[| 0; 1 |]
  in
  Alcotest.check_raises "competing has no shared coverage"
    (Invalid_argument "Engine.coverage: competing mode has no shared coverage")
    (fun () -> ignore (Engine.coverage competing));
  let coop = Engine.create Engine.E_uar g (rng ()) ~starts:[| 0 |] in
  Alcotest.check_raises "cooperating has no private rows"
    (Invalid_argument "Engine.walker_edge_visited: cooperating mode is shared")
    (fun () -> ignore (Engine.walker_edge_visited coop 0 0))

(* -- competing first-cover --------------------------------------------------- *)

let competing_first_cover () =
  let g = Gen_classic.hypercube 3 in
  let eng =
    Engine.create_spread ~mode:Engine.Competing Engine.E_uar g
      (Rng.create ~seed:9 ()) ~walkers:4
  in
  match Engine.run_until_first_cover eng with
  | None -> Alcotest.fail "no walker covered the hypercube"
  | Some (w, s) ->
      Alcotest.(check bool) "winner in range" true (w >= 0 && w < 4);
      Alcotest.(check (option int)) "winner's recorded cover step" (Some s)
        (Engine.walker_cover_step eng w);
      Alcotest.(check int) "winner saw every vertex" (Graph.n g)
        (Engine.walker_vertices_visited eng w);
      (* No loser covered strictly earlier. *)
      for w' = 0 to 3 do
        match Engine.walker_cover_step eng w' with
        | Some s' -> Alcotest.(check bool) "first" true (s' >= s)
        | None -> ()
      done

let () =
  Alcotest.run "kernel"
    [
      ( "packed",
        [
          Alcotest.test_case "replicates Rng.stream" `Quick
            packed_matches_streams;
          Alcotest.test_case "root not advanced" `Quick
            packed_root_not_advanced;
          Alcotest.test_case "save/restore round-trip" `Quick
            packed_save_restore;
          Alcotest.test_case "rng_of_walker snapshots" `Quick
            packed_rng_of_walker;
          qcheck prop_packed_equals_streams;
        ] );
      ( "streams",
        [
          Alcotest.test_case "derived streams distinct, root pure" `Quick
            stream_distinct_and_pure;
        ] );
      ( "w1-identity",
        [
          Alcotest.test_case "e-process uar" `Quick w1_identity_euar;
          Alcotest.test_case "e-process lowest" `Quick w1_identity_elowest;
          Alcotest.test_case "e-process highest" `Quick w1_identity_ehighest;
          Alcotest.test_case "srw" `Quick w1_identity_srw;
          Alcotest.test_case "rotor" `Quick w1_identity_rotor;
          qcheck prop_w1_equals_legacy;
        ] );
      ( "cooperating",
        [
          qcheck prop_coop_coverage_union;
          Alcotest.test_case "counters partition the clock" `Quick
            coop_counters_partition;
        ] );
      ( "differential",
        [
          Alcotest.test_case "stock battery, jobs 1 = jobs 4" `Quick
            kernel_battery_jobs_agree;
          Alcotest.test_case "W=17 on a small graph" `Quick
            kernel_battery_w17_smoke;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "pool run equals sequential" `Quick
            competing_pool_equals_sequential;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "skip-preference killed" `Quick
            mutation_skip_preference_killed;
          Alcotest.test_case "torn-SoA killed" `Quick mutation_torn_soa_killed;
          Alcotest.test_case "reused PRNG word killed" `Quick
            mutation_reuse_prng_killed;
          Alcotest.test_case "unfaulted control stays clean" `Quick
            mutation_control_clean;
        ] );
      ( "team",
        [
          Alcotest.test_case "per-walker streams distinct" `Quick
            team_walker_streams_distinct;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip bit-identical" `Quick
            checkpoint_roundtrip_bit_identical;
          Alcotest.test_case "rejects corruption" `Quick
            checkpoint_rejects_corruption;
        ] );
      ( "validation",
        [ Alcotest.test_case "create/mode guards" `Quick create_validation ] );
      ( "competing",
        [ Alcotest.test_case "first cover" `Quick competing_first_cover ] );
    ]
