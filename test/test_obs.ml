(* Tests for the observability layer: JSON serialisation, the metrics
   registry, trace sinks, timers/progress, and the Observe wiring that
   connects walk processes to them — including the trace-determinism
   guarantee (same seed, same graph => identical event stream and metrics
   snapshot). *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Rng = Ewalk_prng.Rng
module Json = Ewalk_obs.Json
module Metrics = Ewalk_obs.Metrics
module Shard = Ewalk_obs.Shard
module Trace = Ewalk_obs.Trace
module Timer = Ewalk_obs.Timer
module Progress = Ewalk_obs.Progress
module Export = Ewalk_obs.Export
module Flight = Ewalk_obs.Flight
module Replay = Ewalk_check.Replay
module Invariant = Ewalk_check.Invariant
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Cover = Ewalk.Cover
module Coverage = Ewalk.Coverage
module Observe = Ewalk.Observe

let qcheck = QCheck_alcotest.to_alcotest

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub hay i nn = needle || go (i + 1)
  in
  go 0

(* -- Json -------------------------------------------------------------------- *)

let json_rendering () =
  Alcotest.(check string)
    "scalars" {|[null,true,42,1.5,"a\"b\\c\nd"]|}
    (Json.to_string
       (Json.List
          [
            Json.Null; Json.Bool true; Json.Int 42; Json.Float 1.5;
            Json.String "a\"b\\c\nd";
          ]));
  Alcotest.(check string)
    "object field order preserved" {|{"b":1,"a":2}|}
    (Json.to_string (Json.Obj [ ("b", Json.Int 1); ("a", Json.Int 2) ]));
  Alcotest.(check string)
    "integral float keeps decimal point" {|3.0|}
    (Json.to_string (Json.Float 3.0));
  Alcotest.(check string)
    "control chars escaped" {|"\u0001"|}
    (Json.to_string (Json.String "\001"))

let json_parser_roundtrip () =
  let v =
    Json.Obj
      [
        ("schema", Json.String "x/1");
        ("xs", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
        ("ok", Json.Bool false);
        ("name", Json.String "a\"b\\c\n\t");
        ("neg", Json.Int (-42));
        ("tiny", Json.Float 1e-9);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "parse (to_string v) = v" true (v = v')
  | Error e -> Alcotest.failf "roundtrip failed: %s" e);
  (* Standard JSON beyond our own output: whitespace, \u escapes (surrogate
     pair) decoded to UTF-8.  {|..|} keeps the backslashes literal, so the
     parser really sees the \u escapes. *)
  (match
     Json.of_string {|  { "a" : [ 1 , 2.0 ] , "u" : "\u0041\uD83D\uDE00" }  |}
   with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.0 ]); ("u", Json.String u) ]) ->
      Alcotest.(check string) "unicode escapes to UTF-8" "A\xf0\x9f\x98\x80" u
  | Ok other -> Alcotest.failf "unexpected parse: %s" (Json.to_string other)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Integral numbers parse as Int, everything else as Float. *)
  Alcotest.(check bool) "3 is Int" true (Json.of_string "3" = Ok (Json.Int 3));
  Alcotest.(check bool) "3.0 is Float" true
    (Json.of_string "3.0" = Ok (Json.Float 3.0));
  Alcotest.(check bool) "3e2 is Float" true
    (Json.of_string "3e2" = Ok (Json.Float 300.0))

let json_parser_errors () =
  let rejects s =
    match Json.of_string s with
    | Ok v -> Alcotest.failf "accepted %S as %s" s (Json.to_string v)
    | Error _ -> ()
  in
  List.iter rejects
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2";
      "{\"a\" 1}"; "[1 2]"; "\"bad \\x escape\"";
    ]

let json_accessors () =
  let v = Json.Obj [ ("a", Json.Int 3); ("b", Json.Float 1.5) ] in
  Alcotest.(check bool) "member hit" true (Json.member "a" v = Some (Json.Int 3));
  Alcotest.(check bool) "member miss" true (Json.member "z" v = None);
  Alcotest.(check bool) "int as float" true
    (Option.bind (Json.member "a" v) Json.to_float_opt = Some 3.0);
  Alcotest.(check bool) "float not int" true
    (Option.bind (Json.member "b" v) Json.to_int_opt = None)

(* -- Benchstat --------------------------------------------------------------- *)

module Benchstat = Ewalk_obs.Benchstat

let benchstat_median_mad () =
  Alcotest.(check (float 1e-9)) "odd median" 3.0
    (Benchstat.median [| 5.0; 1.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "even median interpolates" 2.5
    (Benchstat.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "mad" 1.0
    (Benchstat.mad [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  Alcotest.(check (float 1e-9)) "mad of constant is 0" 0.0
    (Benchstat.mad [| 7.0; 7.0; 7.0 |]);
  Alcotest.check_raises "median of empty"
    (Invalid_argument "Benchstat.median: empty sample") (fun () ->
      ignore (Benchstat.median [||]))

let benchstat_measure () =
  let s = Benchstat.measure ~reps:12 ~min_rep_s:1e-4 (fun () -> ()) in
  Alcotest.(check int) "samples as requested" 12 s.Benchstat.samples;
  Alcotest.(check bool) "median positive" true (s.Benchstat.median_ns > 0.0);
  Alcotest.(check bool) "min <= median" true
    (s.Benchstat.min_ns <= s.Benchstat.median_ns);
  Alcotest.(check bool) "mad non-negative" true (s.Benchstat.mad_ns >= 0.0);
  (* reps floors at 10. *)
  let s = Benchstat.measure ~reps:3 ~min_rep_s:1e-5 (fun () -> ()) in
  Alcotest.(check int) "reps floored at 10" 10 s.Benchstat.samples

let benchstat_overhead_non_negative () =
  (* Identical kernels: true overhead 0; the paired estimator must report
     exactly 0 however the noise lands. *)
  let work () = ignore (Sys.opaque_identity (Array.make 128 0)) in
  for _ = 1 to 3 do
    let oh =
      Benchstat.paired_overhead ~reps:10 ~min_rep_s:1e-4 ~base:work
        ~instrumented:work ()
    in
    Alcotest.(check bool) "reported >= 0" true (oh.Benchstat.percent >= 0.0);
    Alcotest.(check bool) "noise >= 0" true (oh.Benchstat.noise_percent >= 0.0);
    Alcotest.(check int) "pairs floored at 10" 10 oh.Benchstat.pairs
  done;
  (* A genuinely slower instrumented side must show, not clamp to 0. *)
  let slow () =
    work ();
    for _ = 1 to 40 do
      work ()
    done
  in
  let oh =
    Benchstat.paired_overhead ~reps:10 ~min_rep_s:1e-4 ~base:work
      ~instrumented:slow ()
  in
  Alcotest.(check bool) "real overhead detected" true
    (oh.Benchstat.percent > 100.0)

(* -- Ledger ------------------------------------------------------------------ *)

module Ledger = Ewalk_obs.Ledger

let k ?(mad = 50.0) median =
  {
    Ledger.k_median_ns = median;
    k_mad_ns = mad;
    k_min_ns = median *. 0.9;
    k_samples = 10;
  }

let ledger_roundtrip () =
  let r =
    Ledger.make ~timestamp:123.5 ~git_rev:"abc1234" ~scale:"tiny" ~jobs:4
      ~kernels:[ ("b", k 2000.0); ("a", k 1000.0) ]
      ()
  in
  Alcotest.(check (list string))
    "kernels sorted" [ "a"; "b" ]
    (List.map fst r.Ledger.kernels);
  Alcotest.(check string) "schema" Ledger.schema_version r.Ledger.schema;
  match Ledger.of_json (Ledger.to_json r) with
  | Ok r' -> Alcotest.(check bool) "of_json (to_json r) = r" true (r = r')
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let ledger_accepts_bench_core () =
  (* A BENCH_core.json v2 snapshot is a valid diff endpoint: same kernels
     table, different envelope. *)
  let s =
    {|{"schema":"ewalk-bench/2","scale":"tiny","jobs":1,"git_rev":"deadbee",
       "kernels":{"x":{"median_ns":10.0,"mad_ns":1.0,"min_ns":9.0,"samples":10}},
       "extra_field":null}|}
  in
  match Result.bind (Json.of_string s) Ledger.of_json with
  | Ok r ->
      Alcotest.(check string) "git rev carried" "deadbee" r.Ledger.git_rev;
      Alcotest.(check int) "one kernel" 1 (List.length r.Ledger.kernels)
  | Error e -> Alcotest.failf "BENCH_core.json rejected: %s" e

let ledger_append_read () =
  let path = Filename.temp_file "ewalk-ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r i =
        Ledger.make ~timestamp:(float_of_int i) ~git_rev:"r" ~scale:"tiny"
          ~jobs:1
          ~kernels:[ ("a", k (1000.0 +. float_of_int i)) ]
          ()
      in
      Ledger.append ~path (r 1);
      Ledger.append ~path (r 2);
      (match Ledger.read_history ~path with
      | Ok [ a; b ] ->
          Alcotest.(check (float 0.0)) "file order" 1.0 a.Ledger.timestamp;
          Alcotest.(check (float 0.0)) "second record" 2.0 b.Ledger.timestamp
      | Ok l -> Alcotest.failf "expected 2 records, got %d" (List.length l)
      | Error e -> Alcotest.failf "read_history: %s" e);
      (* load_record on a .jsonl path picks the last record. *)
      match Ledger.load_record path with
      | Ok r -> Alcotest.(check (float 0.0)) "last record" 2.0 r.Ledger.timestamp
      | Error e -> Alcotest.failf "load_record: %s" e)

let ledger_diff_gate () =
  let baseline =
    Ledger.make ~timestamp:0.0 ~git_rev:"base" ~scale:"tiny" ~jobs:1
      ~kernels:
        [
          ("steady", k ~mad:50.0 1000.0);
          ("noisy", k ~mad:400.0 1000.0);
          ("zero-mad", k ~mad:0.0 1000.0);
          ("base-only", k 1.0);
        ]
      ()
  in
  let candidate kernels =
    Ledger.make ~timestamp:1.0 ~git_rev:"cand" ~scale:"tiny" ~jobs:1 ~kernels
      ()
  in
  (* Within tolerance: +25% relative floor dominates 6 MADs of 50ns. *)
  let ok =
    Ledger.diff ~baseline
      (candidate
         [
           ("steady", k 1240.0); ("noisy", k 3000.0); ("zero-mad", k 1200.0);
           ("cand-only", k 1.0);
         ])
  in
  Alcotest.(check int) "intersection only" 3 (List.length ok);
  Alcotest.(check bool) "steady +24% ok" true
    (not (List.find (fun v -> v.Ledger.v_kernel = "steady") ok).Ledger.v_regressed);
  (* noisy: tolerance = max(6*400, 0.25*1000) = 2400 -> 3000 < 3400 ok *)
  Alcotest.(check bool) "noisy +200% within 6 MADs" true
    (not (List.find (fun v -> v.Ledger.v_kernel = "noisy") ok).Ledger.v_regressed);
  Alcotest.(check bool) "no regression" false (Ledger.any_regression ok);
  (* Beyond tolerance. *)
  let bad =
    Ledger.diff ~baseline
      (candidate
         [ ("steady", k 1400.0); ("noisy", k 1000.0); ("zero-mad", k 1260.0) ])
  in
  let v name = List.find (fun v -> v.Ledger.v_kernel = name) bad in
  Alcotest.(check bool) "steady +40% regressed" true
    (v "steady").Ledger.v_regressed;
  Alcotest.(check bool) "zero-mad uses relative floor" true
    (v "zero-mad").Ledger.v_regressed;
  Alcotest.(check bool) "any_regression" true (Ledger.any_regression bad);
  (* An improvement is never a regression, and tolerance scales with MADs. *)
  let improved = Ledger.diff ~baseline (candidate [ ("steady", k 100.0) ]) in
  Alcotest.(check bool) "faster is fine" false (Ledger.any_regression improved);
  let tight =
    Ledger.diff ~tolerance_mads:1.0 ~min_rel:0.01 ~baseline
      (candidate [ ("steady", k 1100.0) ])
  in
  Alcotest.(check bool) "tight tolerance flags +10%" true
    (Ledger.any_regression tight)

(* A crashed writer leaves a trailing partial line; the reader must keep
   every complete record and silently drop the torn tail.  A corrupt line
   that IS newline-terminated is still an error: that's damage, not a
   crash artefact. *)
let ledger_truncation_tolerated () =
  let path = Filename.temp_file "ewalk-ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r i =
        Ledger.make ~timestamp:(float_of_int i) ~git_rev:"r" ~scale:"tiny"
          ~jobs:1
          ~kernels:[ ("a", k 1000.0) ]
          ()
      in
      Ledger.append ~path (r 1);
      Ledger.append ~path (r 2);
      let text = In_channel.with_open_bin path In_channel.input_all in
      (* cut the file in the middle of the second record's line *)
      let first_nl = String.index text '\n' in
      let cut = first_nl + 1 + ((String.length text - first_nl) / 2) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub text 0 cut));
      (match Ledger.read_history ~path with
      | Ok [ a ] ->
          Alcotest.(check (float 0.0)) "surviving record" 1.0 a.Ledger.timestamp
      | Ok l ->
          Alcotest.failf "expected 1 surviving record, got %d" (List.length l)
      | Error e -> Alcotest.failf "truncated tail not tolerated: %s" e);
      (* a terminated-but-corrupt line is reported, not skipped *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub text 0 cut);
          Out_channel.output_string oc "\n");
      match Ledger.read_history ~path with
      | Ok _ -> Alcotest.fail "corrupt terminated line accepted"
      | Error _ -> ())

(* -- Metrics ----------------------------------------------------------------- *)

let metrics_counters_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "steps" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  Alcotest.(check int) "same name, same counter" 5
    (Metrics.value (Metrics.counter m "steps"));
  let g = Metrics.gauge m "frontier" in
  Metrics.set g 7.5;
  Metrics.set_max g 3.0;
  Alcotest.(check (float 0.0)) "set_max keeps max" 7.5 (Metrics.gauge_value g);
  Metrics.set_max g 9.0;
  Alcotest.(check (float 0.0)) "set_max raises" 9.0 (Metrics.gauge_value g);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"steps\" already registered with a different kind")
    (fun () -> ignore (Metrics.gauge m "steps"))

let metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] m "lens" in
  List.iter (fun x -> Metrics.observe h x) [ 0.5; 1.0; 5.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 1006.5 (Metrics.hist_sum h);
  let json = Metrics.to_json_string m in
  (* Buckets are cumulative-style per-bucket counts: <=1: two (0.5, 1.0),
     (1,10]: one, (10,100]: none, +inf: one. *)
  Alcotest.(check bool)
    (Printf.sprintf "snapshot mentions buckets: %s" json)
    true
    (let expected =
       {|"buckets":[{"le":1.0,"count":2},{"le":10.0,"count":1},{"le":100.0,"count":0},{"le":"+inf","count":1}]|}
     in
     (* substring check *)
     let rec contains i =
       if i + String.length expected > String.length json then false
       else String.sub json i (String.length expected) = expected || contains (i + 1)
     in
     contains 0)

let metrics_snapshot_deterministic () =
  let build () =
    let m = Metrics.create () in
    Metrics.add (Metrics.counter m "b") 2;
    Metrics.incr (Metrics.counter m "a");
    Metrics.set (Metrics.gauge m "g") 0.25;
    Metrics.observe (Metrics.histogram m "h") 3.0;
    Metrics.to_json_string m
  in
  Alcotest.(check string) "same ops, same snapshot" (build ()) (build ())

(* Buckets are validated (and used) only when the name is new: retrieval
   with any garbage array is ignored and returns the already-registered
   histogram — the contract sweeps rely on when every trial re-registers
   the same instruments. *)
let metrics_histogram_first_registration_only () =
  let m = Metrics.create () in
  (match Metrics.histogram ~buckets:[| 5.0; 1.0 |] m "bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "descending buckets accepted on first registration");
  (match Metrics.histogram ~buckets:[||] m "empty" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty buckets accepted on first registration");
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] m "lens" in
  Metrics.observe h 1.5;
  let h' = Metrics.histogram ~buckets:[| 5.0; 1.0 |] m "lens" in
  Alcotest.(check bool) "retrieval ignores (even invalid) buckets" true
    (Metrics.hist_bounds h' = [| 1.0; 2.0; 4.0 |]);
  Metrics.observe h' 3.0;
  Alcotest.(check int) "same histogram behind both handles" 2
    (Metrics.hist_count h);
  (* The sharded wrapper forwards the same retrieval semantics. *)
  let sh = Shard.histogram ~buckets:[| 9.0; 0.0 |] m "lens" in
  Shard.observe sh 0.5;
  ignore (Metrics.instruments m);
  Alcotest.(check int) "shard merged into the same histogram" 3
    (Metrics.hist_count h)

let metrics_set_at_deterministic () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "last_trial" in
  Metrics.set_at g ~seq:3 30.0;
  Metrics.set_at g ~seq:1 10.0;
  Alcotest.(check (float 0.0)) "lower seq ignored" 30.0 (Metrics.gauge_value g);
  Metrics.set_at g ~seq:3 33.0;
  Alcotest.(check (float 0.0)) "equal seq overwrites (same trial re-set)" 33.0
    (Metrics.gauge_value g);
  Metrics.set_at g ~seq:7 70.0;
  Alcotest.(check (float 0.0)) "higher seq wins" 70.0 (Metrics.gauge_value g);
  Metrics.set g 99.0;
  Alcotest.(check (float 0.0)) "plain set never displaces set_at" 70.0
    (Metrics.gauge_value g);
  let p = Metrics.gauge m "plain" in
  Metrics.set p 1.0;
  Metrics.set p 2.0;
  Alcotest.(check (float 0.0)) "plain set replaces plain set" 2.0
    (Metrics.gauge_value p);
  Metrics.set_at p ~seq:min_int 5.0;
  Alcotest.(check (float 0.0)) "any set_at displaces plain" 5.0
    (Metrics.gauge_value p);
  (* The deterministic-sweep shape: writes arriving in scrambled lane
     order resolve to the highest trial index, whatever ran last. *)
  let sweep = Metrics.gauge m "sweep" in
  List.iter
    (fun i -> Metrics.set_at sweep ~seq:i (float_of_int (10 * i)))
    [ 2; 0; 4; 1; 3 ];
  Alcotest.(check (float 0.0)) "last trial by index, not by arrival" 40.0
    (Metrics.gauge_value sweep)

(* -- Shards ------------------------------------------------------------------ *)

(* Increments left pending in per-domain cells — including cells of
   domains that have already exited — are published by the pre-read hook,
   so a registry read is exact without an explicit flush; a second read
   after more increments must not double-count what was already drained. *)
let shard_flush_on_read () =
  let m = Metrics.create () in
  let c = Shard.counter m "torn" in
  let h = Shard.histogram ~buckets:[| 1.0; 2.0 |] m "torn_h" in
  Shard.add c 5;
  Shard.observe h 1.5;
  let d =
    Domain.spawn (fun () ->
        Shard.add c 7;
        Shard.incr c;
        Shard.observe h 0.5)
  in
  Domain.join d;
  Alcotest.(check int) "pending spans both domains' cells" 13
    (Shard.pending c);
  Alcotest.(check int) "backing counter not yet published" 0
    (Metrics.value (Metrics.counter m "torn"));
  (match List.assoc_opt "torn" (Metrics.instruments m) with
  | Some (Metrics.Counter_view v) ->
      Alcotest.(check int) "registry read is exact" 13 v
  | _ -> Alcotest.fail "counter missing from instruments");
  Alcotest.(check int) "nothing left pending after the read" 0
    (Shard.pending c);
  Alcotest.(check int) "histogram observations published" 2
    (Metrics.hist_count (Metrics.histogram m "torn_h"));
  (* Torn state: a fresh tail after the flush reconciles on the next read
     without re-adding the part already drained. *)
  Shard.add c 3;
  Alcotest.(check int) "backing still at last flush" 13
    (Metrics.value (Metrics.counter m "torn"));
  Alcotest.(check int) "tail pending" 3 (Shard.pending c);
  ignore (Metrics.instruments m);
  Alcotest.(check int) "exact after second read" 16
    (Metrics.value (Metrics.counter m "torn"));
  Alcotest.(check int) "pending drained" 0 (Shard.pending c)

(* Exactness property: whatever the domain count and per-domain volume,
   every increment lands in the backing instrument exactly once. *)
let shard_exactness_qcheck =
  QCheck.Test.make ~count:20 ~name:"N-domain shard counts are exact"
    QCheck.(pair (int_range 1 4) (int_range 1 2000))
    (fun (domains, bumps) ->
      let m = Metrics.create () in
      let c = Shard.counter m "qc_steps" in
      let h = Shard.histogram ~buckets:[| 0.5; 1.5 |] m "qc_lens" in
      let workers =
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                for i = 1 to bumps do
                  Shard.incr c;
                  Shard.add c 2;
                  if i land 7 = 0 then Shard.observe h 1.0
                done))
      in
      List.iter Domain.join workers;
      Shard.incr c;
      let v =
        match List.assoc_opt "qc_steps" (Metrics.instruments m) with
        | Some (Metrics.Counter_view v) -> v
        | _ -> -1
      in
      v = (3 * domains * bumps) + 1
      && Metrics.hist_count (Metrics.histogram m "qc_lens")
         = domains * (bumps / 8)
      && Shard.pending c = 0)

(* -- Trace sinks ------------------------------------------------------------- *)

let ev_step i =
  Trace.Step { step = i; vertex = i; edge = i; blue = i mod 2 = 0 }

let trace_ring () =
  let r = Trace.ring ~capacity:3 in
  let sink = Trace.ring_sink r in
  for i = 1 to 5 do
    Trace.emit sink (ev_step i)
  done;
  Alcotest.(check int) "length capped" 3 (Trace.ring_length r);
  Alcotest.(check int) "seen counts all" 5 (Trace.ring_seen r);
  let steps =
    List.map
      (function Trace.Step { step; _ } -> step | _ -> -1)
      (Trace.ring_contents r)
  in
  Alcotest.(check (list int)) "keeps most recent, oldest first" [ 3; 4; 5 ] steps

let trace_null_and_filter () =
  Alcotest.(check bool) "null is null" true (Trace.is_null Trace.null);
  Alcotest.(check bool) "filter of null stays null" true
    (Trace.is_null (Trace.filter (fun _ -> true) Trace.null));
  let r = Trace.ring ~capacity:10 in
  let sink =
    Trace.filter
      (function Trace.Step _ -> false | _ -> true)
      (Trace.ring_sink r)
  in
  Trace.emit sink (ev_step 1);
  Trace.emit sink (Trace.Run_end { steps = 1; covered = false });
  Alcotest.(check int) "steps filtered out" 1 (Trace.ring_length r)

let trace_jsonl_format () =
  Alcotest.(check string)
    "step line"
    {|{"type":"step","step":3,"vertex":7,"edge":9,"blue":true}|}
    (Trace.event_to_string
       (Trace.Step { step = 3; vertex = 7; edge = 9; blue = true }));
  Alcotest.(check string)
    "milestone line"
    {|{"type":"milestone","step":10,"kind":"vertices","percent":50,"count":5,"total":10}|}
    (Trace.event_to_string
       (Trace.Milestone
          { step = 10; kind = Trace.Vertices; percent = 50; count = 5; total = 10 }))

(* event_of_string must invert event_to_string for every variant, and name
   the offending field on malformed input. *)
let trace_event_parser_roundtrip () =
  let events =
    [
      Trace.Run_start { name = "e-process(uar)"; n = 10; m = 20; start = 0 };
      Trace.Step { step = 1; vertex = 3; edge = 7; blue = true };
      Trace.Step { step = 2; vertex = 0; edge = -1; blue = false };
      Trace.Phase { step = 0; kind = Trace.Blue; vertex = 0 };
      Trace.Phase { step = 9; kind = Trace.Red; vertex = 4 };
      Trace.Milestone
        { step = 5; kind = Trace.Edges; percent = 25; count = 5; total = 20 };
      Trace.Run_end { steps = 42; covered = true };
    ]
  in
  List.iter
    (fun ev ->
      let line = Trace.event_to_string ev in
      match Trace.event_of_string line with
      | Ok ev' ->
          Alcotest.(check bool) ("roundtrip: " ^ line) true (ev = ev')
      | Error e -> Alcotest.failf "parse %s: %s" line e)
    events;
  let expect_error what line =
    match Trace.event_of_string line with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error _ -> ()
  in
  expect_error "unknown type" {|{"type":"warp","step":1}|};
  expect_error "missing field" {|{"type":"step","step":1,"vertex":2}|};
  expect_error "ill-typed field"
    {|{"type":"step","step":"one","vertex":2,"edge":3,"blue":true}|};
  expect_error "no type" {|{"step":1}|};
  expect_error "not json" "step 1 vertex 2"

(* A full traced run serialised to JSONL and parsed back reproduces the
   run's observable facts: step count, milestone count, and cover time. *)
let trace_full_run_roundtrip () =
  let g = Gen_regular.random_regular_connected (Rng.create ~seed:8 ()) 30 4 in
  let events = ref [] in
  let sink = Trace.of_fun (fun ev -> events := ev :: !events) in
  let obs = Observe.create ~sink () in
  let t = Eprocess.create g (Rng.create ~seed:8 ()) ~start:0 in
  Observe.attach_eprocess obs t;
  let p = Observe.instrument obs (Eprocess.process t) in
  let cover =
    match Cover.run_until_vertex_cover ~cap:100_000 p with
    | Some c -> c
    | None -> Alcotest.fail "walk hit its cap"
  in
  Observe.finish obs p;
  let parsed =
    List.rev_map
      (fun ev ->
        match Trace.event_of_string (Trace.event_to_string ev) with
        | Ok e -> e
        | Error e -> Alcotest.failf "reparse: %s" e)
      !events
  in
  let steps =
    List.length
      (List.filter (function Trace.Step _ -> true | _ -> false) parsed)
  in
  let milestones =
    List.filter (function Trace.Milestone _ -> true | _ -> false) parsed
  in
  Alcotest.(check int) "step events" (Eprocess.steps t) steps;
  Alcotest.(check bool) "milestones present" true (List.length milestones >= 4);
  let cover_milestone =
    List.find_map
      (function
        | Trace.Milestone { step; kind = Trace.Vertices; percent = 100; _ } ->
            Some step
        | _ -> None)
      parsed
  in
  Alcotest.(check (option int)) "cover time survives the round-trip"
    (Some cover) cover_milestone;
  match List.rev parsed with
  | Trace.Run_end { steps = end_steps; covered } :: _ ->
      Alcotest.(check int) "run_end steps" (Eprocess.steps t) end_steps;
      Alcotest.(check bool) "run_end covered" true covered
  | _ -> Alcotest.fail "stream does not end with run_end"

(* -- Timer / Progress -------------------------------------------------------- *)

let timer_span () =
  let x, span = Timer.with_span "unit" (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check string) "name" "unit" (Timer.name span);
  Alcotest.(check bool) "non-negative" true (Timer.elapsed span >= 0.0);
  let d1 = Timer.elapsed span in
  let d2 = Timer.elapsed span in
  Alcotest.(check (float 0.0)) "stopped span is frozen" d1 d2

let progress_reporter () =
  let path = Filename.temp_file "ewalk_progress" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let p =
        Progress.create ~out:oc ~interval:0.0 ~total:4 ~label:"sweep" ()
      in
      Progress.tick p;
      Progress.tick ~amount:3 p;
      Progress.finish p;
      Progress.finish p;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "two ticks + one finish" 3 (List.length lines);
      Alcotest.(check bool) "mentions label" true
        (List.for_all
           (fun l -> String.length l >= 5 && String.sub l 0 5 = "sweep")
           lines))

(* -- Observe wiring ---------------------------------------------------------- *)

let observed_eprocess_run ?(ring_capacity = 200_000) ~seed ~n () =
  let rng = Rng.create ~seed () in
  let g = Gen_regular.cycle_union rng n 2 in
  let walk_rng = Rng.create ~seed:(seed + 1) () in
  let t = Eprocess.create g walk_rng ~start:0 in
  let metrics = Metrics.create () in
  let r = Trace.ring ~capacity:ring_capacity in
  let obs = Observe.create ~metrics ~sink:(Trace.ring_sink r) () in
  Observe.attach_eprocess obs t;
  let p = Observe.instrument obs (Eprocess.process t) in
  let cover = Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) p in
  Observe.finish obs p;
  (t, metrics, r, cover)

let observe_metrics_match_process () =
  let t, metrics, _, cover = observed_eprocess_run ~seed:42 ~n:60 () in
  Alcotest.(check bool) "covered" true (cover <> None);
  Alcotest.(check int) "blue counter = blue_steps" (Eprocess.blue_steps t)
    (Metrics.value (Metrics.counter metrics "blue_steps"));
  Alcotest.(check int) "red counter = red_steps" (Eprocess.red_steps t)
    (Metrics.value (Metrics.counter metrics "red_steps"));
  Alcotest.(check int) "steps counter = steps" (Eprocess.steps t)
    (Metrics.value (Metrics.counter metrics "steps"));
  Alcotest.(check (float 0.0)) "vertex coverage complete" 1.0
    (Metrics.gauge_value (Metrics.gauge metrics "coverage_vertex_fraction"))

let observe_event_stream_shape () =
  let _, _, r, _ = observed_eprocess_run ~seed:7 ~n:40 () in
  let events = Trace.ring_contents r in
  (match events with
  | Trace.Run_start { n; m; start; _ } :: _ ->
      Alcotest.(check int) "n" 40 n;
      Alcotest.(check int) "m" 80 m;
      Alcotest.(check int) "start" 0 start
  | _ -> Alcotest.fail "first event must be run_start");
  (match List.rev events with
  | Trace.Run_end { covered; _ } :: _ ->
      Alcotest.(check bool) "covered" true covered
  | _ -> Alcotest.fail "last event must be run_end");
  let milestone_pcts =
    List.filter_map
      (function
        | Trace.Milestone { kind = Trace.Vertices; percent; _ } -> Some percent
        | _ -> None)
      events
  in
  Alcotest.(check (list int)) "vertex milestones in order" [ 25; 50; 75; 100 ]
    milestone_pcts;
  (* Milestone step indices agree with what Coverage recorded. *)
  let phase_events =
    List.filter (function Trace.Phase _ -> true | _ -> false) events
  in
  Alcotest.(check bool) "has phase events" true (List.length phase_events >= 1);
  let steps =
    List.filter_map
      (function Trace.Step { step; _ } -> Some step | _ -> None)
      events
  in
  let rec consecutive i = function
    | [] -> true
    | s :: rest -> s = i && consecutive (i + 1) rest
  in
  Alcotest.(check bool) "step events numbered 1..k" true (consecutive 1 steps)

let observe_noop_attaches_nothing () =
  let g = Gen_classic.cycle 10 in
  let t = Eprocess.create g (Rng.create ~seed:5 ()) ~start:0 in
  let obs = Observe.create () in
  Alcotest.(check bool) "noop bundle" true (Observe.is_noop obs);
  Observe.attach_eprocess obs t;
  let p = Observe.instrument obs (Eprocess.process t) in
  (* A noop bundle must leave the process untouched - same closure. *)
  Cover.run_steps p 5;
  Alcotest.(check int) "still steps" 5 (Eprocess.steps t)

let observe_srw_attach () =
  let g = Gen_classic.cycle 12 in
  let t = Srw.create g (Rng.create ~seed:9 ()) ~start:0 in
  let metrics = Metrics.create () in
  let obs = Observe.create ~metrics () in
  Observe.attach_srw obs t;
  let p = Observe.instrument obs (Srw.process t) in
  Cover.run_steps p 100;
  Observe.finish obs p;
  Alcotest.(check int) "all srw steps are red" 100
    (Metrics.value (Metrics.counter metrics "red_steps"));
  Alcotest.(check int) "no blue steps" 0
    (Metrics.value (Metrics.counter metrics "blue_steps"))

(* -- Export ------------------------------------------------------------------- *)

let export_render_validates () =
  let _, metrics, _, _ = observed_eprocess_run ~seed:11 ~n:50 () in
  let body = Export.render metrics in
  (match Export.validate body with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rendered exposition rejected: %s" e);
  Alcotest.(check bool) "mentions the steps family" true
    (contains body "ewalk_steps_total");
  Alcotest.(check bool) "mentions coverage gauge" true
    (contains body "ewalk_coverage_vertex_fraction");
  (* And the validator really rejects malformed expositions. *)
  let rejects what s =
    match Export.validate s with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  rejects "garbage line" "garbage{ 1\n# EOF\n";
  rejects "missing # EOF" "# TYPE ewalk_x counter\newalk_x_total 1\n";
  rejects "undeclared family" "ewalk_mystery_total 1\n# EOF\n"

(* -- Flight recorder ---------------------------------------------------------- *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

(* Full circle: a wrapped sink records into the per-domain ring; the ring
   wraps (capacity far below the walk's event count); the dump opens with
   the synthetic resumed-run prologue; and the JSONL file verifies as a
   truncated resumed tail — exactly what [eproc verify-trace --flight]
   does with a crash post-mortem.

   This is the only [Flight.enable] in this binary: the recorder's
   configuration is process-global set-once, and the trailing [disarm]
   keeps the [at_exit] hook from dumping on normal test exit. *)
let flight_dump_replays () =
  let dir = Filename.temp_file "ewalk_flight" "" in
  Sys.remove dir;
  Flight.enable ~capacity:32 ~dir ();
  Fun.protect ~finally:(fun () -> Flight.disarm ())
  @@ fun () ->
  Alcotest.(check bool) "enabled" true (Flight.enabled ());
  let rng = Rng.create ~seed:21 () in
  let g = Gen_regular.cycle_union rng 60 2 in
  let t = Eprocess.create g (Rng.create ~seed:22 ()) ~start:0 in
  let sink = Flight.wrap Trace.null in
  Alcotest.(check bool) "wrap disables ambient recording" false
    (Flight.ambient_active ());
  let obs = Observe.create ~sink () in
  Observe.attach_eprocess obs t;
  let p = Observe.instrument obs (Eprocess.process t) in
  (match Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) p with
  | Some _ -> ()
  | None -> Alcotest.fail "walk hit its cap");
  (* No [Observe.finish]: the stream ends mid-run, like a crash would. *)
  let paths = Flight.dump_now () in
  Fun.protect ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) paths;
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let primary =
    match paths with
    | p :: _ -> p
    | [] -> Alcotest.fail "dump_now wrote nothing"
  in
  Alcotest.(check string) "primary dump name" "flight.jsonl"
    (Filename.basename primary);
  let events =
    List.map
      (fun line ->
        match Trace.event_of_string line with
        | Ok ev -> ev
        | Error e -> Alcotest.failf "unparseable dump line %S: %s" line e)
      (read_lines primary)
  in
  Alcotest.(check bool) "ring wrapped (dump shorter than the walk)" true
    (List.length events < Eprocess.steps t);
  (match events with
  | Trace.Run_start _ :: Trace.Resume _ :: _ -> ()
  | _ -> Alcotest.fail "wrapped dump must open with run_start + resume");
  let v = Replay.create g in
  List.iter
    (fun ev ->
      match Replay.feed v ev with
      | Ok () -> ()
      | Error viol ->
          Alcotest.failf "dump violates invariants: %s"
            (Invariant.violation_to_string viol))
    events;
  match Replay.finish_partial v with
  | Ok s ->
      Alcotest.(check bool) "verified as resumed tail" true s.Replay.resumed;
      Alcotest.(check bool) "truncated, as a crash dump is" false
        s.Replay.complete;
      Alcotest.(check bool) "carried per-step events" true s.Replay.has_steps
  | Error viol ->
      Alcotest.failf "truncated dump rejected: %s"
        (Invariant.violation_to_string viol)

(* -- Determinism (same seed + graph => identical telemetry) ------------------- *)

let jsonl_of_run ~seed ~n =
  let buf = Buffer.create 4096 in
  let sink =
    Trace.of_fun (fun ev ->
        Buffer.add_string buf (Trace.event_to_string ev);
        Buffer.add_char buf '\n')
  in
  let rng = Rng.create ~seed () in
  let g = Gen_regular.cycle_union rng n 2 in
  let t = Eprocess.create g (Rng.create ~seed:(seed + 1) ()) ~start:0 in
  let metrics = Metrics.create () in
  let obs = Observe.create ~metrics ~sink () in
  Observe.attach_eprocess obs t;
  let p = Observe.instrument obs (Eprocess.process t) in
  ignore (Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) p);
  Observe.finish obs p;
  (Buffer.contents buf, Metrics.to_json_string metrics)

let trace_determinism () =
  let stream1, snap1 = jsonl_of_run ~seed:123 ~n:50 in
  let stream2, snap2 = jsonl_of_run ~seed:123 ~n:50 in
  Alcotest.(check bool) "stream non-trivial" true
    (String.length stream1 > 200);
  Alcotest.(check string) "identical JSONL streams" stream1 stream2;
  Alcotest.(check string) "identical metrics snapshots" snap1 snap2;
  (* And a different seed really changes the stream. *)
  let stream3, _ = jsonl_of_run ~seed:124 ~n:50 in
  Alcotest.(check bool) "different seed, different stream" true
    (stream1 <> stream3)

(* -- Runlog ------------------------------------------------------------------ *)

module Runlog = Ewalk_obs.Runlog
module Throughput = Ewalk_obs.Throughput

let runlog_derive_deterministic () =
  let a = Runlog.derive ~config:"trace -n 100" ~epoch_ns:42 () in
  let b = Runlog.derive ~config:"trace -n 100" ~epoch_ns:42 () in
  Alcotest.(check string) "same inputs, same id" a b;
  Alcotest.(check bool) "well-formed" true (Runlog.validate_id a);
  Alcotest.(check bool) "epoch changes id" true
    (a <> Runlog.derive ~config:"trace -n 100" ~epoch_ns:43 ());
  Alcotest.(check bool) "config changes id" true
    (a <> Runlog.derive ~config:"trace -n 101" ~epoch_ns:42 ());
  let child = Runlog.derive ~config:"trace -n 100" ~epoch_ns:42 ~parent:a () in
  Alcotest.(check bool) "parent changes id" true (a <> child);
  let legacy = Runlog.synthesize_legacy "payload-bytes" in
  Alcotest.(check bool) "legacy id well-formed" true (Runlog.validate_id legacy);
  Alcotest.(check string) "legacy id stable" legacy
    (Runlog.synthesize_legacy "payload-bytes")

let runlog_validate_id () =
  List.iter
    (fun (s, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "validate %S" s)
        want (Runlog.validate_id s))
    [
      ("r0123456789abcdef", true);
      ("r0123456789ABCDEF", false);
      ("x0123456789abcdef", false);
      ("r0123456789abcde", false);
      ("r0123456789abcdef0", false);
      ("", false);
    ]

(* -- Run_info trace event ----------------------------------------------------- *)

let trace_run_info_roundtrip () =
  let no_parent =
    Trace.Run_info { run_id = "r0123456789abcdef"; parent_run_id = None }
  in
  (match Trace.event_of_string (Trace.event_to_string no_parent) with
  | Ok e -> Alcotest.(check bool) "no-parent roundtrips" true (e = no_parent)
  | Error e -> Alcotest.fail e);
  let with_parent =
    Trace.Run_info
      {
        run_id = "raaaaaaaaaaaaaaaa";
        parent_run_id = Some "rbbbbbbbbbbbbbbbb";
      }
  in
  match Trace.event_of_string (Trace.event_to_string with_parent) with
  | Ok e -> Alcotest.(check bool) "with-parent roundtrips" true (e = with_parent)
  | Error e -> Alcotest.fail e

let trace_event_of_line_error_shape () =
  (match Trace.event_of_line ~line:7 "{nope" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (String.length e >= 7 && String.sub e 0 7 = "line 7:"));
  match
    Trace.event_of_line ~line:9
      (Trace.event_to_string (Trace.Resume { step = 3 }))
  with
  | Ok (Trace.Resume { step }) -> Alcotest.(check int) "valid line parses" 3 step
  | _ -> Alcotest.fail "valid line rejected"

(* -- Throughput --------------------------------------------------------------- *)

let throughput_pure_rates () =
  let s = 1_000_000_000 in
  let pairs = [ (0, 0); (4096, s); (12288, 2 * s) ] in
  (match Throughput.lifetime_rate_of_pairs pairs with
  | Some r -> Alcotest.(check (float 1.0)) "lifetime first-to-last" 6144.0 r
  | None -> Alcotest.fail "no lifetime rate");
  (* A window covering only the last interval reads the recent rate, not
     the lifetime average. *)
  (match
     Throughput.windowed_rate_of_pairs ~now_ns:(2 * s) ~window_ns:(3 * s / 2)
       pairs
   with
  | Some r -> Alcotest.(check (float 1.0)) "windowed reads recent" 8192.0 r
  | None -> Alcotest.fail "no windowed rate");
  (* Polling long after the last sample: falls back to the most recent
     adjacent pair rather than reporting nothing. *)
  (match
     Throughput.windowed_rate_of_pairs ~now_ns:(60 * s) ~window_ns:s pairs
   with
  | Some r -> Alcotest.(check (float 1.0)) "stalled poll falls back" 8192.0 r
  | None -> Alcotest.fail "stalled fallback missing");
  Alcotest.(check (list (float 1.0)))
    "adjacent rates" [ 4096.0; 8192.0 ]
    (Throughput.rates_of_pairs pairs);
  Alcotest.(check bool) "empty series" true
    (Throughput.lifetime_rate_of_pairs [] = None);
  Alcotest.(check bool) "single sample" true
    (Throughput.windowed_rate_of_pairs ~now_ns:5 ~window_ns:5 [ (1, 1) ]
    = None)

let throughput_sampler_basic () =
  Throughput.reset ();
  Fun.protect ~finally:Throughput.reset @@ fun () ->
  Throughput.add 4096;
  Throughput.add 4096;
  Alcotest.(check int) "total accumulates" 8192 (Throughput.total_steps ());
  (* The first add is always retained (no prior sample to throttle
     against); the second lands inside the 10 ms min gap. *)
  Alcotest.(check bool) "first sample retained" true
    (List.length (Throughput.samples ()) >= 1);
  let fields = Throughput.summary_fields () in
  Alcotest.(check bool) "summary carries steps_total" true
    (List.assoc_opt "steps_total" fields = Some (Json.Int 8192));
  Alcotest.(check bool) "summary carries sample count" true
    (List.mem_assoc "throughput_samples" fields)

(* -- Ledger provenance and rate kernels --------------------------------------- *)

let ledger_run_id_roundtrip () =
  let k =
    { Ledger.k_median_ns = 10.0; k_mad_ns = 1.0; k_min_ns = 9.0; k_samples = 5 }
  in
  let r =
    Ledger.make ~timestamp:1.0 ~git_rev:"aaa" ~run_id:"r0123456789abcdef"
      ~scale:"tiny" ~jobs:1
      ~kernels:[ ("x", k) ]
      ()
  in
  (match Ledger.of_json (Ledger.to_json r) with
  | Ok r2 ->
      Alcotest.(check string) "run_id survives" "r0123456789abcdef"
        r2.Ledger.run_id
  | Error e -> Alcotest.fail e);
  (* Legacy records (no run_id) still load, with "" — and an empty id is
     omitted from the JSON so pre-provenance goldens stay stable. *)
  let legacy =
    Ledger.make ~timestamp:1.0 ~git_rev:"aaa" ~run_id:"" ~scale:"tiny" ~jobs:1
      ~kernels:[ ("x", k) ]
      ()
  in
  Alcotest.(check bool) "empty id omitted from JSON" false
    (contains (Json.to_string (Ledger.to_json legacy)) "run_id");
  match Ledger.of_json (Ledger.to_json legacy) with
  | Ok r2 -> Alcotest.(check string) "legacy loads with empty id" "" r2.Ledger.run_id
  | Error e -> Alcotest.fail e

let ledger_rate_gate () =
  Alcotest.(check bool) "rate kernel detected" true
    (Ledger.higher_is_better "headline:steps_per_second_eprocess");
  Alcotest.(check bool) "latency kernel not" false
    (Ledger.higher_is_better "fig1:eprocess-10k-steps");
  let k median =
    {
      Ledger.k_median_ns = median;
      k_mad_ns = 10.0;
      k_min_ns = median;
      k_samples = 10;
    }
  in
  let record v =
    Ledger.make ~timestamp:1.0 ~git_rev:"aaa" ~scale:"tiny" ~jobs:1
      ~kernels:[ ("headline:steps_per_second_x", k v) ]
      ()
  in
  let regressed cand =
    Ledger.any_regression
      (Ledger.diff ~tolerance_mads:6.0 ~min_rel:0.25 ~baseline:(record 1000.0)
         (record cand))
  in
  (* tolerance = max (6 * 10) (0.25 * 1000) = 250: for a rate series the
     regression direction inverts — drops regress, rises never do. *)
  Alcotest.(check bool) "large drop regresses" true (regressed 600.0);
  Alcotest.(check bool) "drop within tolerance ok" false (regressed 900.0);
  Alcotest.(check bool) "rise never regresses" false (regressed 2000.0)

(* -- Export run-info metric ---------------------------------------------------- *)

let export_run_info_metric () =
  Runlog.set_current
    (Some
       {
         Runlog.run_id = "r0123456789abcdef";
         parent_run_id = Some "rfedcba9876543210";
       });
  Fun.protect ~finally:(fun () -> Runlog.set_current None) @@ fun () ->
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "steps");
  let body = Export.render m in
  Alcotest.(check bool) "info metric present" true
    (contains body
       "ewalk_run_info{run_id=\"r0123456789abcdef\",parent_run_id=\"rfedcba9876543210\"} 1");
  match Export.validate body with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exposition with run info rejected: %s" e

(* -- Flight capacity validation ------------------------------------------------ *)

let flight_capacity_env_validation () =
  let dir = Filename.temp_file "ewalk_flight" "" in
  Sys.remove dir;
  Unix.putenv "EWALK_FLIGHT_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "EWALK_FLIGHT_DIR" "";
      Unix.putenv "EWALK_FLIGHT_CAPACITY" "";
      Flight.disarm ())
    (fun () ->
      let rejects what v check_msg =
        Unix.putenv "EWALK_FLIGHT_CAPACITY" v;
        match Flight.enable_from_env () with
        | Ok () -> Alcotest.failf "%s accepted" what
        | Error e ->
            Alcotest.(check bool)
              (Printf.sprintf "%s error names the variable" what)
              true
              (contains e "EWALK_FLIGHT_CAPACITY");
            if check_msg then
              Alcotest.(check bool)
                (Printf.sprintf "%s error carries the value" what)
                true (contains e v)
      in
      rejects "zero capacity" "0" true;
      rejects "negative capacity" "-3" true;
      rejects "non-numeric capacity" "banana" true;
      Unix.putenv "EWALK_FLIGHT_CAPACITY" "8";
      (match Flight.enable_from_env () with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Flight.disarm ())

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "rendering" `Quick json_rendering;
          Alcotest.test_case "parser roundtrip" `Quick json_parser_roundtrip;
          Alcotest.test_case "parser errors" `Quick json_parser_errors;
          Alcotest.test_case "accessors" `Quick json_accessors;
        ] );
      ( "benchstat",
        [
          Alcotest.test_case "median and mad" `Quick benchstat_median_mad;
          Alcotest.test_case "measure" `Quick benchstat_measure;
          Alcotest.test_case "paired overhead non-negative" `Quick
            benchstat_overhead_non_negative;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "roundtrip" `Quick ledger_roundtrip;
          Alcotest.test_case "accepts BENCH_core.json" `Quick
            ledger_accepts_bench_core;
          Alcotest.test_case "append and read" `Quick ledger_append_read;
          Alcotest.test_case "truncated tail tolerated" `Quick
            ledger_truncation_tolerated;
          Alcotest.test_case "diff regression gate" `Quick ledger_diff_gate;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            metrics_counters_gauges;
          Alcotest.test_case "histogram" `Quick metrics_histogram;
          Alcotest.test_case "snapshot deterministic" `Quick
            metrics_snapshot_deterministic;
          Alcotest.test_case "histogram buckets validated once" `Quick
            metrics_histogram_first_registration_only;
          Alcotest.test_case "set_at deterministic" `Quick
            metrics_set_at_deterministic;
        ] );
      ( "shard",
        [
          Alcotest.test_case "flush on read" `Quick shard_flush_on_read;
          qcheck shard_exactness_qcheck;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick trace_ring;
          Alcotest.test_case "null and filter" `Quick trace_null_and_filter;
          Alcotest.test_case "jsonl format" `Quick trace_jsonl_format;
          Alcotest.test_case "event parser roundtrip" `Quick
            trace_event_parser_roundtrip;
          Alcotest.test_case "full run roundtrip" `Quick
            trace_full_run_roundtrip;
        ] );
      ( "timer",
        [
          Alcotest.test_case "span" `Quick timer_span;
          Alcotest.test_case "progress" `Quick progress_reporter;
        ] );
      ( "observe",
        [
          Alcotest.test_case "metrics match process" `Quick
            observe_metrics_match_process;
          Alcotest.test_case "event stream shape" `Quick
            observe_event_stream_shape;
          Alcotest.test_case "noop is free" `Quick observe_noop_attaches_nothing;
          Alcotest.test_case "srw attach" `Quick observe_srw_attach;
          Alcotest.test_case "determinism" `Quick trace_determinism;
        ] );
      ( "export",
        [
          Alcotest.test_case "render validates" `Quick export_render_validates;
        ] );
      ( "flight",
        [
          Alcotest.test_case "dump replays" `Quick flight_dump_replays;
          Alcotest.test_case "capacity env validation" `Quick
            flight_capacity_env_validation;
        ] );
      ( "runlog",
        [
          Alcotest.test_case "derive deterministic" `Quick
            runlog_derive_deterministic;
          Alcotest.test_case "validate_id" `Quick runlog_validate_id;
          Alcotest.test_case "run_info event roundtrip" `Quick
            trace_run_info_roundtrip;
          Alcotest.test_case "event_of_line error shape" `Quick
            trace_event_of_line_error_shape;
          Alcotest.test_case "export run info metric" `Quick
            export_run_info_metric;
          Alcotest.test_case "ledger run_id roundtrip" `Quick
            ledger_run_id_roundtrip;
          Alcotest.test_case "ledger rate gate inverts" `Quick
            ledger_rate_gate;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "pure rate helpers" `Quick throughput_pure_rates;
          Alcotest.test_case "sampler basics" `Quick throughput_sampler_basic;
        ] );
    ]
