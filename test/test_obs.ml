(* Tests for the observability layer: JSON serialisation, the metrics
   registry, trace sinks, timers/progress, and the Observe wiring that
   connects walk processes to them — including the trace-determinism
   guarantee (same seed, same graph => identical event stream and metrics
   snapshot). *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Rng = Ewalk_prng.Rng
module Json = Ewalk_obs.Json
module Metrics = Ewalk_obs.Metrics
module Trace = Ewalk_obs.Trace
module Timer = Ewalk_obs.Timer
module Progress = Ewalk_obs.Progress
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Cover = Ewalk.Cover
module Coverage = Ewalk.Coverage
module Observe = Ewalk.Observe

(* -- Json -------------------------------------------------------------------- *)

let json_rendering () =
  Alcotest.(check string)
    "scalars" {|[null,true,42,1.5,"a\"b\\c\nd"]|}
    (Json.to_string
       (Json.List
          [
            Json.Null; Json.Bool true; Json.Int 42; Json.Float 1.5;
            Json.String "a\"b\\c\nd";
          ]));
  Alcotest.(check string)
    "object field order preserved" {|{"b":1,"a":2}|}
    (Json.to_string (Json.Obj [ ("b", Json.Int 1); ("a", Json.Int 2) ]));
  Alcotest.(check string)
    "integral float keeps decimal point" {|3.0|}
    (Json.to_string (Json.Float 3.0));
  Alcotest.(check string)
    "control chars escaped" {|"\u0001"|}
    (Json.to_string (Json.String "\001"))

(* -- Metrics ----------------------------------------------------------------- *)

let metrics_counters_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "steps" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  Alcotest.(check int) "same name, same counter" 5
    (Metrics.value (Metrics.counter m "steps"));
  let g = Metrics.gauge m "frontier" in
  Metrics.set g 7.5;
  Metrics.set_max g 3.0;
  Alcotest.(check (float 0.0)) "set_max keeps max" 7.5 (Metrics.gauge_value g);
  Metrics.set_max g 9.0;
  Alcotest.(check (float 0.0)) "set_max raises" 9.0 (Metrics.gauge_value g);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"steps\" already registered with a different kind")
    (fun () -> ignore (Metrics.gauge m "steps"))

let metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] m "lens" in
  List.iter (fun x -> Metrics.observe h x) [ 0.5; 1.0; 5.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 1006.5 (Metrics.hist_sum h);
  let json = Metrics.to_json_string m in
  (* Buckets are cumulative-style per-bucket counts: <=1: two (0.5, 1.0),
     (1,10]: one, (10,100]: none, +inf: one. *)
  Alcotest.(check bool)
    (Printf.sprintf "snapshot mentions buckets: %s" json)
    true
    (let expected =
       {|"buckets":[{"le":1.0,"count":2},{"le":10.0,"count":1},{"le":100.0,"count":0},{"le":"+inf","count":1}]|}
     in
     (* substring check *)
     let rec contains i =
       if i + String.length expected > String.length json then false
       else String.sub json i (String.length expected) = expected || contains (i + 1)
     in
     contains 0)

let metrics_snapshot_deterministic () =
  let build () =
    let m = Metrics.create () in
    Metrics.add (Metrics.counter m "b") 2;
    Metrics.incr (Metrics.counter m "a");
    Metrics.set (Metrics.gauge m "g") 0.25;
    Metrics.observe (Metrics.histogram m "h") 3.0;
    Metrics.to_json_string m
  in
  Alcotest.(check string) "same ops, same snapshot" (build ()) (build ())

(* -- Trace sinks ------------------------------------------------------------- *)

let ev_step i =
  Trace.Step { step = i; vertex = i; edge = i; blue = i mod 2 = 0 }

let trace_ring () =
  let r = Trace.ring ~capacity:3 in
  let sink = Trace.ring_sink r in
  for i = 1 to 5 do
    Trace.emit sink (ev_step i)
  done;
  Alcotest.(check int) "length capped" 3 (Trace.ring_length r);
  Alcotest.(check int) "seen counts all" 5 (Trace.ring_seen r);
  let steps =
    List.map
      (function Trace.Step { step; _ } -> step | _ -> -1)
      (Trace.ring_contents r)
  in
  Alcotest.(check (list int)) "keeps most recent, oldest first" [ 3; 4; 5 ] steps

let trace_null_and_filter () =
  Alcotest.(check bool) "null is null" true (Trace.is_null Trace.null);
  Alcotest.(check bool) "filter of null stays null" true
    (Trace.is_null (Trace.filter (fun _ -> true) Trace.null));
  let r = Trace.ring ~capacity:10 in
  let sink =
    Trace.filter
      (function Trace.Step _ -> false | _ -> true)
      (Trace.ring_sink r)
  in
  Trace.emit sink (ev_step 1);
  Trace.emit sink (Trace.Run_end { steps = 1; covered = false });
  Alcotest.(check int) "steps filtered out" 1 (Trace.ring_length r)

let trace_jsonl_format () =
  Alcotest.(check string)
    "step line"
    {|{"type":"step","step":3,"vertex":7,"edge":9,"blue":true}|}
    (Trace.event_to_string
       (Trace.Step { step = 3; vertex = 7; edge = 9; blue = true }));
  Alcotest.(check string)
    "milestone line"
    {|{"type":"milestone","step":10,"kind":"vertices","percent":50,"count":5,"total":10}|}
    (Trace.event_to_string
       (Trace.Milestone
          { step = 10; kind = Trace.Vertices; percent = 50; count = 5; total = 10 }))

(* -- Timer / Progress -------------------------------------------------------- *)

let timer_span () =
  let x, span = Timer.with_span "unit" (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check string) "name" "unit" (Timer.name span);
  Alcotest.(check bool) "non-negative" true (Timer.elapsed span >= 0.0);
  let d1 = Timer.elapsed span in
  let d2 = Timer.elapsed span in
  Alcotest.(check (float 0.0)) "stopped span is frozen" d1 d2

let progress_reporter () =
  let path = Filename.temp_file "ewalk_progress" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let p =
        Progress.create ~out:oc ~interval:0.0 ~total:4 ~label:"sweep" ()
      in
      Progress.tick p;
      Progress.tick ~amount:3 p;
      Progress.finish p;
      Progress.finish p;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "two ticks + one finish" 3 (List.length lines);
      Alcotest.(check bool) "mentions label" true
        (List.for_all
           (fun l -> String.length l >= 5 && String.sub l 0 5 = "sweep")
           lines))

(* -- Observe wiring ---------------------------------------------------------- *)

let observed_eprocess_run ?(ring_capacity = 200_000) ~seed ~n () =
  let rng = Rng.create ~seed () in
  let g = Gen_regular.cycle_union rng n 2 in
  let walk_rng = Rng.create ~seed:(seed + 1) () in
  let t = Eprocess.create g walk_rng ~start:0 in
  let metrics = Metrics.create () in
  let r = Trace.ring ~capacity:ring_capacity in
  let obs = Observe.create ~metrics ~sink:(Trace.ring_sink r) () in
  Observe.attach_eprocess obs t;
  let p = Observe.instrument obs (Eprocess.process t) in
  let cover = Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) p in
  Observe.finish obs p;
  (t, metrics, r, cover)

let observe_metrics_match_process () =
  let t, metrics, _, cover = observed_eprocess_run ~seed:42 ~n:60 () in
  Alcotest.(check bool) "covered" true (cover <> None);
  Alcotest.(check int) "blue counter = blue_steps" (Eprocess.blue_steps t)
    (Metrics.value (Metrics.counter metrics "blue_steps"));
  Alcotest.(check int) "red counter = red_steps" (Eprocess.red_steps t)
    (Metrics.value (Metrics.counter metrics "red_steps"));
  Alcotest.(check int) "steps counter = steps" (Eprocess.steps t)
    (Metrics.value (Metrics.counter metrics "steps"));
  Alcotest.(check (float 0.0)) "vertex coverage complete" 1.0
    (Metrics.gauge_value (Metrics.gauge metrics "coverage_vertex_fraction"))

let observe_event_stream_shape () =
  let _, _, r, _ = observed_eprocess_run ~seed:7 ~n:40 () in
  let events = Trace.ring_contents r in
  (match events with
  | Trace.Run_start { n; m; start; _ } :: _ ->
      Alcotest.(check int) "n" 40 n;
      Alcotest.(check int) "m" 80 m;
      Alcotest.(check int) "start" 0 start
  | _ -> Alcotest.fail "first event must be run_start");
  (match List.rev events with
  | Trace.Run_end { covered; _ } :: _ ->
      Alcotest.(check bool) "covered" true covered
  | _ -> Alcotest.fail "last event must be run_end");
  let milestone_pcts =
    List.filter_map
      (function
        | Trace.Milestone { kind = Trace.Vertices; percent; _ } -> Some percent
        | _ -> None)
      events
  in
  Alcotest.(check (list int)) "vertex milestones in order" [ 25; 50; 75; 100 ]
    milestone_pcts;
  (* Milestone step indices agree with what Coverage recorded. *)
  let phase_events =
    List.filter (function Trace.Phase _ -> true | _ -> false) events
  in
  Alcotest.(check bool) "has phase events" true (List.length phase_events >= 1);
  let steps =
    List.filter_map
      (function Trace.Step { step; _ } -> Some step | _ -> None)
      events
  in
  let rec consecutive i = function
    | [] -> true
    | s :: rest -> s = i && consecutive (i + 1) rest
  in
  Alcotest.(check bool) "step events numbered 1..k" true (consecutive 1 steps)

let observe_noop_attaches_nothing () =
  let g = Gen_classic.cycle 10 in
  let t = Eprocess.create g (Rng.create ~seed:5 ()) ~start:0 in
  let obs = Observe.create () in
  Alcotest.(check bool) "noop bundle" true (Observe.is_noop obs);
  Observe.attach_eprocess obs t;
  let p = Observe.instrument obs (Eprocess.process t) in
  (* A noop bundle must leave the process untouched - same closure. *)
  Cover.run_steps p 5;
  Alcotest.(check int) "still steps" 5 (Eprocess.steps t)

let observe_srw_attach () =
  let g = Gen_classic.cycle 12 in
  let t = Srw.create g (Rng.create ~seed:9 ()) ~start:0 in
  let metrics = Metrics.create () in
  let obs = Observe.create ~metrics () in
  Observe.attach_srw obs t;
  let p = Observe.instrument obs (Srw.process t) in
  Cover.run_steps p 100;
  Observe.finish obs p;
  Alcotest.(check int) "all srw steps are red" 100
    (Metrics.value (Metrics.counter metrics "red_steps"));
  Alcotest.(check int) "no blue steps" 0
    (Metrics.value (Metrics.counter metrics "blue_steps"))

(* -- Determinism (same seed + graph => identical telemetry) ------------------- *)

let jsonl_of_run ~seed ~n =
  let buf = Buffer.create 4096 in
  let sink =
    Trace.of_fun (fun ev ->
        Buffer.add_string buf (Trace.event_to_string ev);
        Buffer.add_char buf '\n')
  in
  let rng = Rng.create ~seed () in
  let g = Gen_regular.cycle_union rng n 2 in
  let t = Eprocess.create g (Rng.create ~seed:(seed + 1) ()) ~start:0 in
  let metrics = Metrics.create () in
  let obs = Observe.create ~metrics ~sink () in
  Observe.attach_eprocess obs t;
  let p = Observe.instrument obs (Eprocess.process t) in
  ignore (Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) p);
  Observe.finish obs p;
  (Buffer.contents buf, Metrics.to_json_string metrics)

let trace_determinism () =
  let stream1, snap1 = jsonl_of_run ~seed:123 ~n:50 in
  let stream2, snap2 = jsonl_of_run ~seed:123 ~n:50 in
  Alcotest.(check bool) "stream non-trivial" true
    (String.length stream1 > 200);
  Alcotest.(check string) "identical JSONL streams" stream1 stream2;
  Alcotest.(check string) "identical metrics snapshots" snap1 snap2;
  (* And a different seed really changes the stream. *)
  let stream3, _ = jsonl_of_run ~seed:124 ~n:50 in
  Alcotest.(check bool) "different seed, different stream" true
    (stream1 <> stream3)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [ Alcotest.test_case "rendering" `Quick json_rendering ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            metrics_counters_gauges;
          Alcotest.test_case "histogram" `Quick metrics_histogram;
          Alcotest.test_case "snapshot deterministic" `Quick
            metrics_snapshot_deterministic;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick trace_ring;
          Alcotest.test_case "null and filter" `Quick trace_null_and_filter;
          Alcotest.test_case "jsonl format" `Quick trace_jsonl_format;
        ] );
      ( "timer",
        [
          Alcotest.test_case "span" `Quick timer_span;
          Alcotest.test_case "progress" `Quick progress_reporter;
        ] );
      ( "observe",
        [
          Alcotest.test_case "metrics match process" `Quick
            observe_metrics_match_process;
          Alcotest.test_case "event stream shape" `Quick
            observe_event_stream_shape;
          Alcotest.test_case "noop is free" `Quick observe_noop_attaches_nothing;
          Alcotest.test_case "srw attach" `Quick observe_srw_attach;
          Alcotest.test_case "determinism" `Quick trace_determinism;
        ] );
    ]
