(* Tests for the domain pool and the parallel-determinism contract:
   Pool.map_array agrees with Array.map (qcheck, arbitrary arrays and
   chunk sizes), exceptions propagate and leave the pool reusable, trial
   sweeps and whole experiment tables are bit-identical across job counts,
   and the metrics registry survives concurrent hammering from several
   domains without losing a single increment. *)

module Pool = Ewalk_par.Pool
module Sweep = Ewalk_expt.Sweep
module Metrics = Ewalk_obs.Metrics
module Progress = Ewalk_obs.Progress
module Rng = Ewalk_prng.Rng

let qcheck = QCheck_alcotest.to_alcotest

(* -- Pool basics ------------------------------------------------------------ *)

let pool_jobs_validated () =
  Alcotest.check_raises "jobs 0 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1 (got 0)") (fun () ->
      ignore (Pool.create ~jobs:0 ()));
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check int) "jobs as given" 3 (Pool.jobs p));
  Alcotest.(check bool) "default_jobs positive" true (Pool.default_jobs () >= 1)

let pool_map_array_basic () =
  Pool.with_pool ~jobs:4 (fun p ->
      let src = Array.init 100 (fun i -> i) in
      let got = Pool.map_array p (fun x -> (2 * x) + 1) src in
      Alcotest.(check (array int))
        "map_array = Array.map"
        (Array.map (fun x -> (2 * x) + 1) src)
        got)

let pool_map_array_empty_and_single () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map_array p succ [||]);
      Alcotest.(check (array int))
        "singleton" [| 8 |]
        (Pool.map_array p succ [| 7 |]))

let pool_run_order () =
  Pool.with_pool ~jobs:3 (fun p ->
      let got = Pool.run p [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ] in
      Alcotest.(check (list int)) "positional results" [ 1; 2; 3 ] got)

let pool_sequential_at_one_job () =
  (* jobs=1 must not spawn: the mapped function sees the calling domain. *)
  Pool.with_pool ~jobs:1 (fun p ->
      let self = Domain.self () in
      let domains =
        Pool.map_array p (fun _ -> Domain.self ()) (Array.make 8 ())
      in
      Array.iter
        (fun d ->
          Alcotest.(check bool) "ran on the calling domain" true (d = self))
        domains)

exception Boom of int

let pool_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun p ->
      let src = Array.init 64 (fun i -> i) in
      (try
         ignore (Pool.map_array p (fun x -> if x = 13 then raise (Boom x) else x) src);
         Alcotest.fail "expected Boom to propagate"
       with Boom 13 -> ());
      (* The batch failure must not poison the pool. *)
      let got = Pool.map_array p (fun x -> x * x) src in
      Alcotest.(check (array int))
        "pool reusable after failure"
        (Array.map (fun x -> x * x) src)
        got)

let pool_shutdown_rejects () =
  let p = Pool.create ~jobs:2 () in
  Pool.shutdown p;
  Alcotest.check_raises "map_array on a shut-down pool raises"
    (Invalid_argument "Pool: submit to a shut-down pool") (fun () ->
      ignore (Pool.map_array p succ [| 1; 2 |]))

let pool_lane_telemetry () =
  Pool.with_pool ~jobs:3 (fun p ->
      let before = Pool.stats p in
      Alcotest.(check int) "one report per lane" 3 (Array.length before);
      let busy_work x =
        let acc = ref x in
        for i = 1 to 50_000 do
          acc := (!acc + i) land 0xFFFF
        done;
        !acc
      in
      let src = Array.init 64 (fun i -> i) in
      ignore (Pool.map_array ~chunk:4 p busy_work src);
      let lanes = Pool.stats p in
      let total_chunks =
        Array.fold_left (fun a l -> a + l.Pool.chunks_served) 0 lanes
      in
      Alcotest.(check int) "every chunk claimed exactly once" 16 total_chunks;
      Array.iteri
        (fun i l ->
          Alcotest.(check bool)
            (Printf.sprintf "lane %d busy_s >= 0" i)
            true (l.Pool.busy_s >= 0.0);
          Alcotest.(check bool)
            (Printf.sprintf "lane %d wait_s >= 0" i)
            true (l.Pool.wait_s >= 0.0))
        lanes;
      Alcotest.(check int) "caller ran one batch" 1 lanes.(0).Pool.tasks_served;
      Alcotest.(check bool) "somebody was busy" true
        (Array.exists (fun l -> l.Pool.busy_s > 0.0) lanes);
      (* The utilization line carries the job count and the chunk total. *)
      let line = Pool.utilization_line p ~wall_s:1.0 in
      let contains needle =
        let n = String.length needle and l = String.length line in
        let rec scan i =
          i + n <= l && (String.sub line i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "line mentions jobs and chunks: %s" line)
        true
        (contains "jobs=3" && contains "chunks=16");
      Pool.reset_stats p;
      let zeroed = Pool.stats p in
      Array.iter
        (fun l ->
          Alcotest.(check int) "chunks zeroed" 0 l.Pool.chunks_served;
          Alcotest.(check (float 0.0)) "busy zeroed" 0.0 l.Pool.busy_s)
        zeroed)

(* -- qcheck: map_array ≡ Array.map across arrays, chunks, job counts ------- *)

let prop_map_array_agrees =
  QCheck.Test.make ~name:"Pool.map_array f = Array.map f" ~count:60
    QCheck.(
      triple (array small_int) (int_range 1 10) (int_range 1 4))
    (fun (xs, chunk, jobs) ->
      Pool.with_pool ~jobs (fun p ->
          let f x = (3 * x) - 7 in
          Pool.map_array ~chunk p f xs = Array.map f xs))

let prop_run_agrees =
  QCheck.Test.make ~name:"Pool.run = List.map force" ~count:40
    QCheck.(pair (list small_int) (int_range 1 4))
    (fun (xs, jobs) ->
      Pool.with_pool ~jobs (fun p ->
          Pool.run p (List.map (fun x () -> x * x) xs)
          = List.map (fun x -> x * x) xs))

(* -- determinism across job counts ----------------------------------------- *)

let trial_workload rng =
  (* A real (graph + walk) workload so per-trial RNG independence is
     actually exercised, not just a pure function of the index. *)
  let g = Ewalk_graph.Gen_regular.random_regular_connected rng 150 4 in
  match
    Ewalk.Cover.run_until_vertex_cover
      ~cap:(Ewalk.Cover.default_cap g)
      (Ewalk.Eprocess.process (Ewalk.Eprocess.create g rng ~start:0))
  with
  | Some t -> float_of_int t
  | None -> Float.nan

let with_jobs jobs f =
  Pool.with_pool ~jobs (fun p -> f (Some p))

let determinism_mean_of_trials () =
  let run pool = Sweep.mean_of_trials ?pool ~seed:7 ~trials:6 trial_workload in
  let seq = run None in
  List.iter
    (fun jobs ->
      let par = with_jobs jobs run in
      Alcotest.(check bool)
        (Printf.sprintf "summary identical at jobs=%d" jobs)
        true (par = seq))
    [ 1; 2; 4 ]

let determinism_map_trials_positions () =
  (* Result i must come from generator i, for every job count. *)
  let rngs () = Sweep.trial_rngs ~seed:3 ~trials:8 in
  let seq = Sweep.map_trials (fun rng -> Rng.int rng 1_000_000) (rngs ()) in
  List.iter
    (fun jobs ->
      let par =
        with_jobs jobs (fun pool ->
            Sweep.map_trials ?pool (fun rng -> Rng.int rng 1_000_000) (rngs ()))
      in
      Alcotest.(check (array int))
        (Printf.sprintf "positional at jobs=%d" jobs)
        seq par)
    [ 1; 2; 4 ]

let determinism_env_default_pool () =
  (* A pool sized by the environment (EWALK_JOBS — this is what
     `make test-par` varies) must agree with the sequential path. *)
  let seq = Sweep.mean_of_trials ~seed:11 ~trials:5 trial_workload in
  let par =
    Pool.with_pool (fun p ->
        Sweep.mean_of_trials ~pool:p ~seed:11 ~trials:5 trial_workload)
  in
  Alcotest.(check bool)
    (Printf.sprintf "identical under EWALK_JOBS default (%d jobs)"
       (Pool.default_jobs ()))
    true (par = seq)

let determinism_exp_cover_table () =
  (* A full experiment table — rendered text, notes and all — must be
     bit-identical across job counts. *)
  let render pool =
    Ewalk_expt.Table.render
      (Ewalk_expt.Exp_cover.fig1 ~pool ~scale:Ewalk_expt.Sweep.Tiny ~seed:2)
  in
  let seq = render None in
  List.iter
    (fun jobs ->
      let par = with_jobs jobs render in
      Alcotest.(check string)
        (Printf.sprintf "fig1 table identical at jobs=%d" jobs)
        seq par)
    [ 1; 2; 4 ]

let determinism_gauges_across_jobs () =
  (* Gauges written through [Observe.for_trial] resolve last-by-trial-index
     ([Metrics.set_at]), so the final metrics snapshot — graph-size gauges,
     coverage fractions and all — is pinned to the highest trial index, not
     to whichever lane happened to finish last.  The whole snapshot must be
     bit-identical at every job count.  Trials get different graph sizes so
     a wrong winner is visible. *)
  let snapshot pool =
    let metrics = Metrics.create () in
    let obs = Ewalk.Observe.create ~metrics () in
    let rngs = Sweep.trial_rngs ~seed:19 ~trials:8 in
    let indexed = Array.mapi (fun i rng -> (i, rng)) rngs in
    let run_trial (trial, rng) =
      let g = Ewalk_graph.Gen_regular.cycle_union rng (16 + (2 * trial)) 2 in
      let t = Ewalk.Eprocess.create g rng ~start:0 in
      let o = Ewalk.Observe.for_trial obs ~trial in
      Ewalk.Observe.attach_eprocess o t;
      let p = Ewalk.Observe.instrument o (Ewalk.Eprocess.process t) in
      let cover =
        Ewalk.Cover.run_until_vertex_cover ~cap:(Ewalk.Cover.default_cap g) p
      in
      Ewalk.Observe.finish o p;
      match cover with Some c -> c | None -> -1
    in
    (match pool with
    | None -> ignore (Array.map run_trial indexed)
    | Some p -> ignore (Pool.map_array p run_trial indexed));
    Metrics.to_json_string metrics
  in
  let seq = snapshot None in
  let contains needle =
    let nh = String.length seq and nn = String.length needle in
    let rec go i =
      if i + nn > nh then false
      else String.sub seq i nn = needle || go (i + 1)
    in
    go 0
  in
  (* Sanity: the gauges pin trial 7's graph (n = 16 + 2*7 = 30). *)
  Alcotest.(check bool) "gauges hold the last trial's graph size" true
    (contains {|"graph_vertices":30.0|});
  List.iter
    (fun jobs ->
      let par = with_jobs jobs snapshot in
      Alcotest.(check string)
        (Printf.sprintf "metrics snapshot identical at jobs=%d" jobs)
        seq par)
    [ 1; 2; 4 ]

(* -- Metrics under concurrency ---------------------------------------------- *)

let metrics_concurrent_counters () =
  let m = Metrics.create () in
  let domains = 4 and bumps = 25_000 in
  let shared = Metrics.counter m "shared" in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let own = Metrics.counter m (Printf.sprintf "own-%d" d) in
            let h = Metrics.histogram m (Printf.sprintf "hist-%d" d) in
            for i = 1 to bumps do
              Metrics.incr shared;
              Metrics.add own 2;
              if i land 255 = 0 then Metrics.observe h (float_of_int i)
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no lost shared increments" (domains * bumps)
    (Metrics.value shared);
  for d = 0 to domains - 1 do
    Alcotest.(check int)
      (Printf.sprintf "own-%d exact" d)
      (2 * bumps)
      (Metrics.value (Metrics.counter m (Printf.sprintf "own-%d" d)));
    Alcotest.(check int)
      (Printf.sprintf "hist-%d observation count" d)
      (bumps / 256)
      (Metrics.hist_count (Metrics.histogram m (Printf.sprintf "hist-%d" d)))
  done;
  (* The snapshot must still be well-formed, deterministic JSON. *)
  let json = Metrics.to_json_string m in
  Alcotest.(check bool) "snapshot non-empty" true (String.length json > 0);
  Alcotest.(check string) "snapshot deterministic" json
    (Metrics.to_json_string m)

let metrics_concurrent_gauge_max () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "peak" in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 10_000 do
              Metrics.set_max g (float_of_int ((i * 4) + d))
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check (float 0.0)) "running max survives the race" 40_003.0
    (Metrics.gauge_value g)

let progress_concurrent_ticks () =
  let buf = Buffer.create 256 in
  (* A reporter on an in-memory channel is awkward; use a suppressed one and
     check the tick counting via finish on a real file channel instead. *)
  ignore buf;
  let path = Filename.temp_file "ewalk-progress" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let r =
        Progress.create ~out:oc ~interval:0.0 ~total:4_000 ~label:"par" ()
      in
      let workers =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 1_000 do
                  Progress.tick r
                done))
      in
      List.iter Domain.join workers;
      Progress.finish r;
      close_out oc;
      let ic = open_in path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      (* The final line reports every tick from every domain. *)
      let has_total =
        let needle = "4000/4000" in
        let n = String.length needle and l = String.length s in
        let rec scan i =
          i + n <= l && (String.sub s i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) "final line counts all domains' ticks" true
        has_total)

(* -- Fault tolerance -------------------------------------------------------- *)

(* An element that fails its first [fail_times] executions and then
   succeeds — the transient-fault model the retry budget exists for. *)
let flaky_element fail_times =
  let attempts = Atomic.make 0 in
  fun x ->
    let a = Atomic.fetch_and_add attempts 1 in
    if a < fail_times then raise (Boom x) else x * x

let retry_recovers_and_is_recorded () =
  Pool.with_pool ~jobs:4 (fun p ->
      Pool.reset_stats p;
      let flaky = flaky_element 1 in
      let src = Array.init 64 (fun i -> i) in
      let got =
        Pool.map_array ~chunk:4 ~retries:2 p
          (fun x -> if x = 13 then flaky x else x * x)
          src
      in
      Alcotest.(check (array int))
        "retried batch = undisturbed map"
        (Array.map (fun x -> x * x) src)
        got;
      let lanes = Pool.stats p in
      let failed =
        Array.fold_left (fun a l -> a + l.Pool.tasks_failed) 0 lanes
      in
      let retried =
        Array.fold_left (fun a l -> a + l.Pool.tasks_retried) 0 lanes
      in
      Alcotest.(check int) "one failure recorded" 1 failed;
      Alcotest.(check int) "one retry recorded" 1 retried;
      Alcotest.(check int)
        "recovery ran in the caller's lane" 1 lanes.(0).Pool.tasks_retried)

let retry_sequential_path () =
  (* The jobs=1 path honours the same budget (what Sweep relies on). *)
  Pool.with_pool ~jobs:1 (fun p ->
      let flaky = flaky_element 2 in
      let got =
        Pool.map_array ~retries:2 p
          (fun x -> if x = 3 then flaky x else x * x)
          [| 1; 2; 3; 4 |]
      in
      Alcotest.(check (array int)) "sequential retry" [| 1; 4; 9; 16 |] got;
      Alcotest.(check int)
        "retries recorded in lane 0" 2 (Pool.stats p).(0).Pool.tasks_retried)

let retry_exhausted_raises_task_failed () =
  Pool.with_pool ~jobs:4 ~retries:1 (fun p ->
      let src = Array.init 32 (fun i -> i) in
      (try
         ignore
           (Pool.map_array p (fun x -> if x = 7 then raise (Boom x) else x) src);
         Alcotest.fail "expected Task_failed"
       with Pool.Task_failed { index; attempts; last } ->
         Alcotest.(check int) "failing index" 7 index;
         Alcotest.(check int) "budget spent: retries + 1" 2 attempts;
         Alcotest.(check bool) "last failure preserved" true (last = Boom 7));
      (* Exhaustion must not poison the pool. *)
      let got = Pool.map_array p succ src in
      Alcotest.(check (array int))
        "pool reusable after Task_failed" (Array.map succ src) got)

let retry_results_index_ordered () =
  (* A retried batch must still be positional: the recovered element lands
     at its own index, not at completion order. *)
  Pool.with_pool ~jobs:3 (fun p ->
      let flaky = flaky_element 1 in
      let src = Array.init 40 (fun i -> i) in
      let got =
        Pool.map_array ~chunk:1 ~retries:1 p
          (fun x -> if x = 0 then flaky x else x * 10)
          src
      in
      Array.iteri
        (fun i v ->
          Alcotest.(check int)
            (Printf.sprintf "index %d" i)
            (if i = 0 then 0 else i * 10)
            v)
        got)

let timeout_raises_task_timeout () =
  Pool.with_pool ~jobs:2 (fun p ->
      try
        ignore
          (Pool.map_array ~task_timeout_s:0.01 p
             (fun x ->
               if x = 2 then Unix.sleepf 0.1;
               x)
             [| 0; 1; 2; 3 |]);
        Alcotest.fail "expected Task_timeout"
      with Pool.Task_timeout { index; elapsed_s; timeout_s } ->
        Alcotest.(check int) "overlong index" 2 index;
        Alcotest.(check bool) "elapsed exceeds budget" true
          (elapsed_s > timeout_s))

let injected_lane_failure_retried () =
  (* The Ewalk_resume.Faults wiring: fail-lane:0:once makes exactly one
     element execution on lane 0 raise; a positive budget absorbs it and
     the result is unchanged.  jobs=1 so every execution provably runs on
     lane 0 — at higher job counts a helper lane can legitimately drain
     the whole batch before lane 0 takes a chunk, and the injection would
     have nothing to hit. *)
  let spec =
    match Ewalk_resume.Faults.parse "fail-lane:0:once" with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Ewalk_resume.Faults.install spec;
  Fun.protect ~finally:(fun () -> Ewalk_resume.Faults.install Ewalk_resume.Faults.none)
  @@ fun () ->
  Pool.with_pool ~jobs:1 ~retries:1 (fun p ->
      let src = Array.init 16 (fun i -> i) in
      let got = Pool.map_array p (fun x -> x + 100) src in
      Alcotest.(check (array int))
        "injected failure absorbed"
        (Array.map (fun x -> x + 100) src)
        got;
      let lane0 = (Pool.stats p).(0) in
      Alcotest.(check int) "injection recorded once" 1 lane0.Pool.tasks_failed;
      Alcotest.(check int) "recovery recorded" 1 lane0.Pool.tasks_retried)

let injected_failure_bit_identical_sweep () =
  (* End to end through Sweep.map_trials: an injected failure plus retry
     must leave trial results bit-identical to an undisturbed sweep,
     because every trial consumes a copy of its own generator.  The clean
     run uses 2 jobs and the faulted run the sequential path (where the
     lane-0 injection deterministically hits the first trial), so this
     also re-checks bit-identity across job counts. *)
  let f rng = Rng.float rng 1.0 +. Rng.float rng 1.0 in
  let rngs () = Sweep.trial_rngs ~seed:42 ~trials:12 in
  let clean =
    Pool.with_pool ~jobs:2 (fun p -> Sweep.map_trials ~pool:p f (rngs ()))
  in
  let spec =
    match Ewalk_resume.Faults.parse "fail-lane:0:once" with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Ewalk_resume.Faults.install spec;
  Fun.protect ~finally:(fun () -> Ewalk_resume.Faults.install Ewalk_resume.Faults.none)
  @@ fun () ->
  let faulted =
    Pool.with_pool ~jobs:1 ~retries:2 (fun p ->
        let got = Sweep.map_trials ~pool:p f (rngs ()) in
        Alcotest.(check int)
          "injection actually fired" 1 (Pool.stats p).(0).Pool.tasks_failed;
        got)
  in
  Alcotest.(check int) "lengths" (Array.length clean) (Array.length faulted);
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d bit-identical" i)
        true
        (Int64.bits_of_float c = Int64.bits_of_float faulted.(i)))
    clean

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "jobs validated" `Quick pool_jobs_validated;
          Alcotest.test_case "map_array basic" `Quick pool_map_array_basic;
          Alcotest.test_case "empty and singleton" `Quick
            pool_map_array_empty_and_single;
          Alcotest.test_case "run order" `Quick pool_run_order;
          Alcotest.test_case "sequential at jobs=1" `Quick
            pool_sequential_at_one_job;
          Alcotest.test_case "exception propagates, pool reusable" `Quick
            pool_exception_propagates;
          Alcotest.test_case "shutdown rejects new batches" `Quick
            pool_shutdown_rejects;
          Alcotest.test_case "lane telemetry" `Quick pool_lane_telemetry;
          qcheck prop_map_array_agrees;
          qcheck prop_run_agrees;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "retry recovers and is recorded" `Quick
            retry_recovers_and_is_recorded;
          Alcotest.test_case "sequential path honours budget" `Quick
            retry_sequential_path;
          Alcotest.test_case "exhausted retries raise Task_failed" `Quick
            retry_exhausted_raises_task_failed;
          Alcotest.test_case "retried results stay index-ordered" `Quick
            retry_results_index_ordered;
          Alcotest.test_case "timeout raises Task_timeout" `Quick
            timeout_raises_task_timeout;
          Alcotest.test_case "injected lane failure retried" `Quick
            injected_lane_failure_retried;
          Alcotest.test_case "injected failure bit-identical sweep" `Quick
            injected_failure_bit_identical_sweep;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "mean_of_trials across jobs" `Slow
            determinism_mean_of_trials;
          Alcotest.test_case "map_trials positional" `Quick
            determinism_map_trials_positions;
          Alcotest.test_case "EWALK_JOBS default pool" `Slow
            determinism_env_default_pool;
          Alcotest.test_case "fig1 table across jobs" `Slow
            determinism_exp_cover_table;
          Alcotest.test_case "gauges across jobs" `Quick
            determinism_gauges_across_jobs;
        ] );
      ( "obs-concurrency",
        [
          Alcotest.test_case "counters exact under domains" `Quick
            metrics_concurrent_counters;
          Alcotest.test_case "gauge running max" `Quick
            metrics_concurrent_gauge_max;
          Alcotest.test_case "progress ticks from domains" `Quick
            progress_concurrent_ticks;
        ] );
    ]
