(* Tests for the span profiler and the OpenMetrics exporter: nesting
   invariants (self = total - children, never negative), exception safety,
   deterministic cross-domain merging, the ambient on/off switch, the
   golden-file check of the exporter's text output, and the validator's
   accept/reject behaviour. *)

module Prof = Ewalk_obs.Prof
module Metrics = Ewalk_obs.Metrics
module Export = Ewalk_obs.Export

let rec find_node name nodes =
  List.find_opt (fun n -> n.Prof.name = name) nodes
  |> function
  | Some n -> Some n
  | None ->
      List.fold_left
        (fun acc n ->
          match acc with
          | Some _ -> acc
          | None -> find_node name n.Prof.children)
        None nodes

let get name nodes =
  match find_node name nodes with
  | Some n -> n
  | None -> Alcotest.failf "span %S not in tree" name

(* -- nesting ----------------------------------------------------------------- *)

let spin_ns ns =
  let t0 = Ewalk_obs.Clock.now_ns () in
  while Ewalk_obs.Clock.elapsed_ns t0 < ns do
    ignore (Sys.opaque_identity 0)
  done

let prof_nesting_invariants () =
  let p = Prof.create () in
  for _ = 1 to 3 do
    Prof.span p "outer" (fun () ->
        spin_ns 200_000;
        Prof.span p "inner-a" (fun () -> spin_ns 400_000);
        Prof.span p "inner-b" (fun () -> spin_ns 100_000))
  done;
  let tree = Prof.tree p in
  let outer = get "outer" tree in
  let a = get "inner-a" tree and b = get "inner-b" tree in
  Alcotest.(check int) "outer calls" 3 outer.Prof.calls;
  Alcotest.(check int) "inner-a calls" 3 a.Prof.calls;
  Alcotest.(check (list string))
    "children sorted by name"
    [ "inner-a"; "inner-b" ]
    (List.map (fun n -> n.Prof.name) outer.Prof.children);
  (* total >= sum of children's totals; self makes up exactly the rest. *)
  Alcotest.(check bool) "outer total covers children" true
    (outer.Prof.total_s >= a.Prof.total_s +. b.Prof.total_s);
  Alcotest.(check (float 1e-9))
    "self = total - children"
    (outer.Prof.total_s -. a.Prof.total_s -. b.Prof.total_s)
    outer.Prof.self_s;
  Alcotest.(check bool) "self non-negative" true (outer.Prof.self_s >= 0.0);
  Alcotest.(check bool) "leaf self = total" true
    (a.Prof.self_s = a.Prof.total_s);
  (* The same name at different depths is a different node. *)
  Prof.span p "inner-a" (fun () -> ());
  let tree = Prof.tree p in
  let top_a = List.find_opt (fun n -> n.Prof.name = "inner-a") tree in
  Alcotest.(check bool) "top-level inner-a separate" true (top_a <> None);
  Alcotest.(check int) "nested inner-a calls unchanged" 3
    (get "inner-a" (get "outer" tree).Prof.children).Prof.calls

exception Probe

let prof_exception_safety () =
  let p = Prof.create () in
  (try
     Prof.span p "outer" (fun () ->
         Prof.span p "inner" (fun () -> raise Probe))
   with Probe -> ());
  (* Both spans closed despite the raise; a later sibling nests correctly. *)
  Prof.span p "outer" (fun () -> Prof.span p "after" (fun () -> ()));
  let tree = Prof.tree p in
  let outer = get "outer" tree in
  Alcotest.(check int) "outer closed twice" 2 outer.Prof.calls;
  Alcotest.(check (list string))
    "both children recorded under outer"
    [ "after"; "inner" ]
    (List.map (fun n -> n.Prof.name) outer.Prof.children);
  Alcotest.check_raises "exit_span with nothing open"
    (Invalid_argument "Prof.exit_span: no open span on this domain")
    (fun () -> Prof.exit_span p)

(* -- cross-domain merge ------------------------------------------------------ *)

let prof_cross_domain_merge () =
  (* Every domain records the same span structure with its own counts; the
     merged tree must sum counts and be identical whatever the domain
     interleaving or spawn order. *)
  let run order =
    let p = Prof.create () in
    Prof.span p "walk" (fun () -> Prof.span p "caller" (fun () -> ()));
    let body reps () =
      for _ = 1 to reps do
        Prof.span p "walk" (fun () ->
            Prof.span p "step" (fun () -> ());
            Prof.span p "step" (fun () -> ()))
      done
    in
    let domains = List.map (fun reps -> Domain.spawn (body reps)) order in
    List.iter Domain.join domains;
    Prof.tree p
  in
  let shape tree =
    let rec flat prefix nodes =
      List.concat_map
        (fun n ->
          let path = prefix ^ "/" ^ n.Prof.name in
          (path, n.Prof.calls) :: flat path n.Prof.children)
        nodes
    in
    flat "" tree
  in
  let t1 = run [ 2; 3; 5 ] and t2 = run [ 5; 3; 2 ] in
  Alcotest.(check (list (pair string int)))
    "merged shape independent of domain order" (shape t1) (shape t2);
  let walk = get "walk" t1 in
  Alcotest.(check int) "walk calls summed across domains" 11 walk.Prof.calls;
  Alcotest.(check int) "step calls summed" 20
    (get "step" walk.Prof.children).Prof.calls;
  Alcotest.(check (list string))
    "children union, sorted" [ "caller"; "step" ]
    (List.map (fun n -> n.Prof.name) walk.Prof.children)

let prof_ambient_switch () =
  (* Default off: span_ambient is transparent. *)
  Prof.disable_ambient ();
  Alcotest.(check bool) "ambient off" true (Prof.ambient () = None);
  Alcotest.(check int) "span_ambient passes through" 7
    (Prof.span_ambient "ghost" (fun () -> 7));
  let p = Prof.enable_ambient () in
  Fun.protect ~finally:Prof.disable_ambient (fun () ->
      Alcotest.(check bool) "enable is idempotent" true
        (Prof.enable_ambient () == p);
      Prof.span_ambient "seen" (fun () -> ());
      Alcotest.(check bool) "ambient span recorded" true
        (find_node "seen" (Prof.tree p) <> None))

(* -- OpenMetrics export ------------------------------------------------------ *)

(* A fixed registry: every instrument kind, adversarial names included.
   Rendering is deterministic, so the output can be a golden file. *)
let golden_registry () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "steps") 12345;
  Metrics.add (Metrics.counter m "blue_steps") 678;
  Metrics.set (Metrics.gauge m "coverage_vertex_fraction") 0.75;
  Metrics.set (Metrics.gauge m "seconds/fig1") 1.5;
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] m "phase_length" in
  List.iter (fun x -> Metrics.observe h x) [ 0.5; 2.0; 3.0; 250.0 ];
  m

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let export_golden_file () =
  let rendered = Export.render (golden_registry ()) in
  let expected = read_file "golden/export.txt" in
  Alcotest.(check string) "matches golden/export.txt" expected rendered

let export_validates () =
  let rendered = Export.render (golden_registry ()) in
  (match Export.validate rendered with
  | Ok () -> ()
  | Error e -> Alcotest.failf "golden render rejected: %s" e);
  let reject what s =
    match Export.validate s with
    | Ok () -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  reject "missing EOF" "# TYPE a gauge\na 1.0\n";
  reject "sample without family" "# TYPE a gauge\nb 1.0\n# EOF\n";
  reject "counter without _total"
    "# TYPE c counter\nc 1\n# EOF\n";
  reject "garbage value" "# TYPE a gauge\na x\n# EOF\n";
  reject "content after EOF" "# TYPE a gauge\na 1.0\n# EOF\na 2.0\n";
  reject "blank line" "# TYPE a gauge\n\na 1.0\n# EOF\n"

let export_includes_profile () =
  let p = Prof.create () in
  Prof.span p "walk" (fun () -> Prof.span p "step" (fun () -> ()));
  let out = Export.render ~prof:p (golden_registry ()) in
  (match Export.validate out with
  | Ok () -> ()
  | Error e -> Alcotest.failf "render with profile rejected: %s" e);
  let contains needle =
    let n = String.length needle and l = String.length out in
    let rec scan i =
      i + n <= l && (String.sub out i n = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "span path label" true
    (contains {|ewalk_prof_calls_total{span="walk/step"} 1|});
  Alcotest.(check bool) "seconds family" true
    (contains {|ewalk_prof_seconds{span="walk"}|});
  Alcotest.(check bool) "self seconds family" true
    (contains {|ewalk_prof_self_seconds{span="walk/step"}|})

let () =
  Alcotest.run "profiler"
    [
      ( "prof",
        [
          Alcotest.test_case "nesting invariants" `Quick
            prof_nesting_invariants;
          Alcotest.test_case "exception safety" `Quick prof_exception_safety;
          Alcotest.test_case "cross-domain merge deterministic" `Quick
            prof_cross_domain_merge;
          Alcotest.test_case "ambient switch" `Quick prof_ambient_switch;
        ] );
      ( "export",
        [
          Alcotest.test_case "golden file" `Quick export_golden_file;
          Alcotest.test_case "validator" `Quick export_validates;
          Alcotest.test_case "profile series" `Quick export_includes_profile;
        ] );
    ]
