(* Tests for the durability layer (Ewalk_resume): CRC-32 known answers,
   snapshot save/restore-then-continue equivalence for every snapshottable
   walk (qcheck over generated graphs for the E-process), corrupted and
   mismatched snapshot rejection, campaign journal memoization / resume /
   truncation tolerance, and the EWALK_FAULT_SPEC grammar. *)

module Crc32 = Ewalk_resume.Crc32
module Snapshot = Ewalk_resume.Snapshot
module Campaign = Ewalk_resume.Campaign
module Faults = Ewalk_resume.Faults
module Json = Ewalk_obs.Json
module Rng = Ewalk_prng.Rng
module Eprocess = Ewalk.Eprocess
module Srw = Ewalk.Srw
module Rotor = Ewalk.Rotor
module Coverage = Ewalk.Coverage
module Exp_util = Ewalk_expt.Exp_util
module Runlog = Ewalk_obs.Runlog

let qcheck = QCheck_alcotest.to_alcotest

let temp_path suffix =
  let path = Filename.temp_file "ewalk-resume" suffix in
  path

let temp_dir () =
  let d = Filename.temp_file "ewalk-resume" ".d" in
  Sys.remove d;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    if Sys.is_directory dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ()
    end
    else Sys.remove dir
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* First-occurrence substring replacement (no Str dependency). *)
let replace_once ~sub ~by s =
  let ls = String.length s and lsub = String.length sub in
  let rec find i =
    if i + lsub > ls then None
    else if String.sub s i lsub = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ by ^ String.sub s (i + lsub) (ls - i - lsub)

(* -- Crc32 ------------------------------------------------------------------ *)

let crc32_known_answers () =
  (* The standard CRC-32 check value, plus anchors for "" and "a". *)
  Alcotest.(check string)
    "check value" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "empty" "00000000" (Crc32.to_hex (Crc32.string ""));
  Alcotest.(check string) "a" "e8b7be43" (Crc32.to_hex (Crc32.string "a"))

let crc32_hex_roundtrip () =
  List.iter
    (fun s ->
      let c = Crc32.string s in
      match Crc32.of_hex (Crc32.to_hex c) with
      | Some c' -> Alcotest.(check int32) s c c'
      | None -> Alcotest.fail "of_hex rejected its own to_hex")
    [ ""; "a"; "123456789"; String.make 1000 'x' ]

(* -- Rng save/restore ------------------------------------------------------- *)

let prop_rng_save_restore =
  QCheck.Test.make ~name:"Rng save/restore continues the same stream"
    ~count:200
    QCheck.(pair small_int (int_range 0 200))
    (fun (seed, warmup) ->
      let r = Rng.create ~seed () in
      for _ = 1 to warmup do
        ignore (Rng.bits64 r)
      done;
      let words = Rng.save r in
      let a = Array.init 32 (fun _ -> Rng.int r 1_000_000) in
      let r' = Rng.restore words in
      let b = Array.init 32 (fun _ -> Rng.int r' 1_000_000) in
      a = b)

let rng_restore_validates () =
  Alcotest.check_raises "wrong word count"
    (Invalid_argument "Rng.restore: expected 4 state words") (fun () ->
      ignore (Rng.restore [| 1L; 2L |]))

(* -- Snapshot round trips --------------------------------------------------- *)

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Snapshot.error_to_string e)

(* Continue [live] (never serialized) and [restored] in lockstep for
   [horizon] steps, checking position, step counters and coverage agree at
   every step: the definition of a faithful snapshot. *)
let check_lockstep ~horizon ~step ~position ~steps ~coverage live restored =
  for i = 1 to horizon do
    step live;
    step restored;
    Alcotest.(check int)
      (Printf.sprintf "position at +%d" i)
      (position live) (position restored);
    Alcotest.(check int)
      (Printf.sprintf "steps at +%d" i)
      (steps live) (steps restored)
  done;
  Alcotest.(check int)
    "vertices visited"
    (Coverage.vertices_visited (coverage live))
    (Coverage.vertices_visited (coverage restored));
  Alcotest.(check int)
    "edges visited"
    (Coverage.edges_visited (coverage live))
    (Coverage.edges_visited (coverage restored))

let prop_eprocess_snapshot_roundtrip =
  QCheck.Test.make
    ~name:"snapshot restore-then-continue = uninterrupted (e-process)"
    ~count:25
    QCheck.(triple (int_range 4 32) (int_range 0 150) (int_range 0 1000))
    (fun (half_n, k, seed) ->
      let n = 2 * half_n in
      let g = Exp_util.regular_graph (Rng.create ~seed ()) ~n ~d:4 in
      let p = Eprocess.create g (Rng.create ~seed:(seed + 1) ()) ~start:0 in
      for _ = 1 to k do
        Eprocess.step p
      done;
      let path = temp_path ".snap" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          (match Snapshot.write ~path (Snapshot.Eprocess p) with
          | Ok () -> ()
          | Error e ->
              QCheck.Test.fail_reportf "write: %s" (Snapshot.error_to_string e));
          let q =
            match Snapshot.read g ~path with
            | Ok (Snapshot.Eprocess q) -> q
            | Ok _ -> QCheck.Test.fail_reportf "restored the wrong walk kind"
            | Error e ->
                QCheck.Test.fail_reportf "read: %s"
                  (Snapshot.error_to_string e)
          in
          if Eprocess.steps q <> k then
            QCheck.Test.fail_reportf "restored %d steps, snapshotted at %d"
              (Eprocess.steps q) k;
          (* p continues in memory, q from disk: they must stay identical. *)
          for i = 1 to 4 * n do
            Eprocess.step p;
            Eprocess.step q;
            if Eprocess.position p <> Eprocess.position q then
              QCheck.Test.fail_reportf "positions diverged at +%d" i
          done;
          Coverage.vertices_visited (Eprocess.coverage p)
          = Coverage.vertices_visited (Eprocess.coverage q)
          && Coverage.edges_visited (Eprocess.coverage p)
             = Coverage.edges_visited (Eprocess.coverage q)
          && Eprocess.blue_steps p = Eprocess.blue_steps q
          && Eprocess.red_steps p = Eprocess.red_steps q))

let snapshot_roundtrip_fixed name make step position steps coverage wrap unwrap
    () =
  let g = Exp_util.regular_graph (Rng.create ~seed:11 ()) ~n:40 ~d:4 in
  let p = make g in
  for _ = 1 to 57 do
    step p
  done;
  let path = temp_path ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ok_or_fail (name ^ " write") (Snapshot.write ~path (wrap p));
      let q = unwrap (ok_or_fail (name ^ " read") (Snapshot.read g ~path)) in
      check_lockstep ~horizon:200 ~step ~position ~steps ~coverage p q)

let srw_snapshot_roundtrip =
  snapshot_roundtrip_fixed "srw"
    (fun g -> Srw.create g (Rng.create ~seed:5 ()) ~start:0)
    Srw.step Srw.position Srw.steps Srw.coverage
    (fun p -> Snapshot.Srw p)
    (function Snapshot.Srw p -> p | _ -> Alcotest.fail "wrong kind")

let lazy_srw_snapshot_roundtrip =
  snapshot_roundtrip_fixed "lazy-srw"
    (fun g -> Srw.create_lazy g (Rng.create ~seed:5 ()) ~start:0)
    Srw.step Srw.position Srw.steps Srw.coverage
    (fun p -> Snapshot.Srw p)
    (function Snapshot.Srw p -> p | _ -> Alcotest.fail "wrong kind")

let rotor_snapshot_roundtrip =
  snapshot_roundtrip_fixed "rotor"
    (fun g ->
      Rotor.create ~randomize_rotors:true g (Rng.create ~seed:5 ()) ~start:0)
    Rotor.step Rotor.position Rotor.steps Rotor.coverage
    (fun p -> Snapshot.Rotor p)
    (function Snapshot.Rotor p -> p | _ -> Alcotest.fail "wrong kind")

(* -- kernel-competing snapshots (ewalk-snapshot/2, bit-packed sets) --------- *)

module Kengine = Ewalk_kernel.Engine

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false else String.sub hay i nn = needle || go (i + 1)
  in
  go 0

(* Round trip a competing engine (per-walker bit-packed visited sets,
   walker-local clocks) through the v2 "kernel-competing" payload kind and
   continue live vs restored in lockstep. *)
let competing_roundtrip proc () =
  let g = Exp_util.regular_graph (Rng.create ~seed:81 ()) ~n:48 ~d:4 in
  let e =
    Kengine.create ~mode:Kengine.Competing proc g
      (Rng.create ~seed:82 ())
      ~starts:[| 0; 5; 11; 17 |]
  in
  for _ = 1 to 157 do
    Kengine.step e
  done;
  let path = temp_path ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ok_or_fail "write" (Snapshot.write ~path (Snapshot.Kernel e));
      (* The summary cross-checks stored counters against the serialized
         bitsets' popcounts — the marker crash_matrix.sh greps for. *)
      (match Snapshot.describe ~path with
      | Ok s ->
          Alcotest.(check bool) "describe carries the popcount verdict" true
            (contains s "counter==popcount")
      | Error err -> Alcotest.failf "describe: %s" (Snapshot.error_to_string err));
      let q =
        match Snapshot.read g ~path with
        | Ok (Snapshot.Kernel q) -> q
        | Ok _ -> Alcotest.fail "restored the wrong walk kind"
        | Error err -> Alcotest.failf "read: %s" (Snapshot.error_to_string err)
      in
      Alcotest.(check int) "mode preserved" 0
        (match Kengine.mode q with Kengine.Competing -> 0 | _ -> 1);
      Alcotest.(check int) "steps preserved" (Kengine.steps e) (Kengine.steps q);
      for i = 1 to 400 do
        Kengine.step e;
        Kengine.step q;
        if Kengine.positions e <> Kengine.positions q then
          Alcotest.failf "positions diverged at +%d" i
      done;
      for w = 0 to 3 do
        Alcotest.(check int)
          (Printf.sprintf "walker %d steps" w)
          (Kengine.walker_steps e w) (Kengine.walker_steps q w);
        Alcotest.(check int)
          (Printf.sprintf "walker %d blue" w)
          (Kengine.walker_blue_steps e w)
          (Kengine.walker_blue_steps q w);
        Alcotest.(check int)
          (Printf.sprintf "walker %d vertices" w)
          (Kengine.walker_vertices_visited e w)
          (Kengine.walker_vertices_visited q w);
        Alcotest.(check int)
          (Printf.sprintf "walker %d edges" w)
          (Kengine.walker_edges_visited e w)
          (Kengine.walker_edges_visited q w);
        Alcotest.(check (option int))
          (Printf.sprintf "walker %d cover step" w)
          (Kengine.walker_cover_step e w)
          (Kengine.walker_cover_step q w)
      done)

(* The derived-counter contract: restore never trusts a serialized visit
   counter it can recount from the bitset. *)
let competing_counter_recount () =
  let g = Exp_util.regular_graph (Rng.create ~seed:83 ()) ~n:32 ~d:4 in
  let e =
    Kengine.create ~mode:Kengine.Competing Kengine.E_uar g
      (Rng.create ~seed:84 ())
      ~starts:[| 0; 1 |]
  in
  for _ = 1 to 64 do
    Kengine.step e
  done;
  let ck = Kengine.checkpoint_competing e in
  (* Unmodified, the record restores. *)
  ignore (Kengine.of_checkpoint_competing g ck : Kengine.t);
  let tampered_v = { ck with Kengine.cc_vcount = Array.map succ ck.Kengine.cc_vcount } in
  Alcotest.check_raises "vertex counter disagreeing with popcount rejected"
    (Invalid_argument
       "Engine.of_checkpoint_competing: stored visit counter disagrees with \
        its bitset popcount")
    (fun () -> ignore (Kengine.of_checkpoint_competing g tampered_v : Kengine.t));
  let tampered_e = { ck with Kengine.cc_ecount = Array.map succ ck.Kengine.cc_ecount } in
  Alcotest.check_raises "edge counter disagreeing with popcount rejected"
    (Invalid_argument
       "Engine.of_checkpoint_competing: stored visit counter disagrees with \
        its bitset popcount")
    (fun () -> ignore (Kengine.of_checkpoint_competing g tampered_e : Kengine.t))

(* -- Snapshot rejection ----------------------------------------------------- *)

let expect_error what pred = function
  | Ok _ -> Alcotest.failf "%s: accepted" what
  | Error e ->
      if not (pred e) then
        Alcotest.failf "%s: wrong error class: %s" what
          (Snapshot.error_to_string e)

let is_corrupt = function Snapshot.Corrupt _ -> true | _ -> false
let is_mismatch = function Snapshot.Mismatch _ -> true | _ -> false
let is_io = function Snapshot.Io _ -> true | _ -> false

let snapshot_rejects_corruption () =
  let g = Exp_util.regular_graph (Rng.create ~seed:3 ()) ~n:20 ~d:4 in
  let p = Eprocess.create g (Rng.create ~seed:4 ()) ~start:0 in
  for _ = 1 to 25 do
    Eprocess.step p
  done;
  let path = temp_path ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ok_or_fail "write" (Snapshot.write ~path (Snapshot.Eprocess p));
      let original = read_file path in
      (* Truncation: a torn write must not be restorable. *)
      write_file path (String.sub original 0 (String.length original / 2));
      expect_error "truncated" is_corrupt (Snapshot.read g ~path);
      (* Payload tampering: flip one digit somewhere after the CRC field. *)
      let tampered = Bytes.of_string original in
      let pos = String.length original - 10 in
      Bytes.set tampered pos
        (if Bytes.get tampered pos = '1' then '2' else '1');
      write_file path (Bytes.to_string tampered);
      expect_error "tampered" is_corrupt (Snapshot.read g ~path);
      (* Unknown schema versions are refused, not guessed at. *)
      write_file path
        (replace_once ~sub:"ewalk-snapshot/2" ~by:"ewalk-snapshot/999" original);
      expect_error "unknown schema" is_mismatch (Snapshot.read g ~path);
      (* Valid file, wrong graph. *)
      write_file path original;
      let g' = Exp_util.regular_graph (Rng.create ~seed:3 ()) ~n:30 ~d:4 in
      expect_error "wrong graph" is_mismatch (Snapshot.read g' ~path);
      (* describe works without the graph and fails cleanly when missing. *)
      (match Snapshot.describe ~path with
      | Ok s ->
          Alcotest.(check bool) "describe mentions kind" true
            (String.length s > 0)
      | Error e ->
          Alcotest.failf "describe: %s" (Snapshot.error_to_string e));
      expect_error "missing file" is_io
        (Snapshot.read g ~path:(path ^ ".does-not-exist")))

(* -- Snapshot run provenance ------------------------------------------------- *)

let snapshot_provenance () =
  let g = Exp_util.regular_graph (Rng.create ~seed:3 ()) ~n:20 ~d:4 in
  let p = Eprocess.create g (Rng.create ~seed:4 ()) ~start:0 in
  for _ = 1 to 10 do
    Eprocess.step p
  done;
  let path = temp_path ".snap" in
  Fun.protect
    ~finally:(fun () ->
      Runlog.set_current None;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* The ambient run's id and parent land in the header and read back. *)
      Runlog.set_current
        (Some
           {
             Runlog.run_id = "raaaaaaaaaaaaaaaa";
             parent_run_id = Some "rbbbbbbbbbbbbbbbb";
           });
      ok_or_fail "write" (Snapshot.write ~path (Snapshot.Eprocess p));
      (match Snapshot.read_with_id g ~path with
      | Ok (_, run) ->
          Alcotest.(check string) "run_id read back" "raaaaaaaaaaaaaaaa"
            run.Runlog.run_id;
          Alcotest.(check (option string))
            "parent read back" (Some "rbbbbbbbbbbbbbbbb")
            run.Runlog.parent_run_id
      | Error e -> Alcotest.failf "read_with_id: %s" (Snapshot.error_to_string e));
      (* A malformed run_id is refused, not trusted: uppercase hex fails
         validate_id, so the length (and CRC'd payload) are untouched. *)
      let original = read_file path in
      write_file path
        (replace_once ~sub:"raaaaaaaaaaaaaaaa" ~by:"rZZZZZZZZZZZZZZZZ" original);
      expect_error "malformed run_id" is_corrupt
        (Result.map fst (Snapshot.read_with_id g ~path));
      (* A provenance-free header (what a pre-run_id writer produced, here
         down-converted to schema v1) still loads — with a deterministic
         synthesized id. *)
      Runlog.set_current None;
      ok_or_fail "plain write" (Snapshot.write ~path (Snapshot.Eprocess p));
      write_file path
        (replace_once ~sub:"ewalk-snapshot/2" ~by:"ewalk-snapshot/1"
           (read_file path));
      match Snapshot.read_with_id g ~path with
      | Error e -> Alcotest.failf "legacy read: %s" (Snapshot.error_to_string e)
      | Ok (_, run) -> (
          Alcotest.(check bool) "synthesized id well-formed" true
            (Runlog.validate_id run.Runlog.run_id);
          Alcotest.(check bool) "no parent on legacy" true
            (run.Runlog.parent_run_id = None);
          match Snapshot.read_with_id g ~path with
          | Ok (_, run2) ->
              Alcotest.(check string) "synthesized id stable across loads"
                run.Runlog.run_id run2.Runlog.run_id
          | Error e ->
              Alcotest.failf "legacy reload: %s" (Snapshot.error_to_string e)))

(* -- Campaign --------------------------------------------------------------- *)

let manifest = [ ("experiment", Json.String "t"); ("seed", Json.Int 1) ]

let ok_campaign what = function
  | Ok c -> c
  | Error e -> Alcotest.failf "%s: %s" what e

let campaign_memoizes_and_resumes () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let runs = ref 0 in
  let trial v () =
    incr runs;
    v
  in
  let c = ok_campaign "open" (Campaign.open_ ~dir ~manifest ~resume:false) in
  Alcotest.(check int) "batch a.0" 0 (Campaign.next_batch c ~label:"a");
  Alcotest.(check int) "batch a.1" 1 (Campaign.next_batch c ~label:"a");
  Alcotest.(check int) "batch b.0" 0 (Campaign.next_batch c ~label:"b");
  Alcotest.(check (float 0.0)) "first run executes" 0.3 (Campaign.run c ~key:"a#0:0" (trial 0.3));
  Alcotest.(check (float 0.0)) "second run memoized" 0.3 (Campaign.run c ~key:"a#0:0" (trial 0.9));
  Alcotest.(check int) "one execution" 1 !runs;
  ignore (Campaign.run c ~key:"a#0:1" (trial 0.7));
  Alcotest.(check int) "completed" 2 (Campaign.completed c);
  Campaign.close c;
  (* A fresh (non-resume) open refuses the leftover campaign. *)
  (match Campaign.open_ ~dir ~manifest ~resume:false with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fresh open over an existing campaign accepted");
  (* A mismatched manifest refuses to resume. *)
  (match
     Campaign.open_ ~dir
       ~manifest:[ ("experiment", Json.String "other") ]
       ~resume:true
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "manifest mismatch accepted");
  (* Resume replays the journal: same values, bit for bit, no execution. *)
  let c2 = ok_campaign "resume" (Campaign.open_ ~dir ~manifest ~resume:true) in
  runs := 0;
  let v = Campaign.run c2 ~key:"a#0:0" (trial 99.0) in
  Alcotest.(check int) "replayed without executing" 0 !runs;
  Alcotest.(check bool) "float bit-identical" true
    (Int64.bits_of_float v = Int64.bits_of_float 0.3);
  Alcotest.(check int) "cached counter" 1 (Campaign.cached c2);
  let w = Campaign.run c2 ~key:"a#1:0" (trial 1.5) in
  Alcotest.(check int) "miss executes" 1 !runs;
  Alcotest.(check (float 0.0)) "miss value" 1.5 w;
  Alcotest.(check int) "executed counter" 1 (Campaign.executed c2);
  Campaign.close c2

let campaign_tolerates_truncated_journal () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = ok_campaign "open" (Campaign.open_ ~dir ~manifest ~resume:false) in
  ignore (Campaign.run c ~key:"a#0:0" (fun () -> 1));
  ignore (Campaign.run c ~key:"a#0:1" (fun () -> 2));
  Campaign.close c;
  (* Simulate a crash mid-append: an unterminated trailing line. *)
  let journal = Filename.concat dir Campaign.journal_basename in
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 journal
  in
  output_string oc "{\"key\":\"a#0:2\",\"data\":\"00";
  close_out oc;
  let c2 = ok_campaign "resume" (Campaign.open_ ~dir ~manifest ~resume:true) in
  Alcotest.(check int) "torn line dropped" 2 (Campaign.completed c2);
  let runs = ref 0 in
  let v =
    Campaign.run c2 ~key:"a#0:2" (fun () ->
        incr runs;
        3)
  in
  Alcotest.(check int) "torn trial re-executes" 1 !runs;
  Alcotest.(check int) "torn trial value" 3 v;
  Campaign.close c2;
  (* The re-run was journaled: a third open replays all three. *)
  let c3 = ok_campaign "reopen" (Campaign.open_ ~dir ~manifest ~resume:true) in
  Alcotest.(check int) "journal healed" 3 (Campaign.completed c3);
  Campaign.close c3

let campaign_describe () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (match Campaign.describe ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "describe of a non-campaign dir accepted");
  let c = ok_campaign "open" (Campaign.open_ ~dir ~manifest ~resume:false) in
  ignore (Campaign.run c ~key:"a#0:0" (fun () -> 1));
  Campaign.close c;
  match Campaign.describe ~dir with
  | Ok s ->
      Alcotest.(check bool) "mentions schema" true
        (String.length s > 0
        && String.sub s 0 (String.length Campaign.schema) = Campaign.schema)
  | Error e -> Alcotest.failf "describe: %s" e

let campaign_provenance_and_v1_resume () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      Runlog.set_current None;
      rm_rf dir)
  @@ fun () ->
  Runlog.set_current
    (Some { Runlog.run_id = "rcccccccccccccccc"; parent_run_id = None });
  let c = ok_campaign "open" (Campaign.open_ ~dir ~manifest ~resume:false) in
  ignore (Campaign.run c ~key:"a#0:0" (fun () -> 1.0));
  Campaign.close c;
  (* The manifest records the creating run, journal rows are stamped. *)
  (match Campaign.provenance ~dir with
  | Ok r ->
      Alcotest.(check string) "manifest run id" "rcccccccccccccccc"
        r.Runlog.run_id
  | Error e -> Alcotest.failf "provenance: %s" e);
  Alcotest.(check bool) "journal rows stamped" true
    (contains
       (read_file (Filename.concat dir Campaign.journal_basename))
       "\"run_id\":\"rcccccccccccccccc\"");
  (* A v1 manifest (no provenance, old schema tag) still resumes: the
     identity comparison ignores schema and run_id fields. *)
  let mpath = Filename.concat dir Campaign.manifest_basename in
  let v1 =
    replace_once ~sub:"ewalk-campaign/2" ~by:"ewalk-campaign/1"
      (replace_once
         ~sub:",\"run_id\":\"rcccccccccccccccc\",\"parent_run_id\":null"
         ~by:"" (read_file mpath))
  in
  Alcotest.(check bool) "fixture stripped provenance" false
    (contains v1 "run_id");
  write_file mpath v1;
  Runlog.set_current None;
  let c2 = ok_campaign "v1 resume" (Campaign.open_ ~dir ~manifest ~resume:true) in
  Alcotest.(check int) "journal replayed" 1 (Campaign.completed c2);
  Campaign.close c2;
  (* Legacy provenance synthesizes a stable, well-formed id... *)
  (match (Campaign.provenance ~dir, Campaign.provenance ~dir) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "legacy id well-formed" true
        (Runlog.validate_id a.Runlog.run_id);
      Alcotest.(check string) "legacy id stable" a.Runlog.run_id b.Runlog.run_id
  | (Error e, _ | _, Error e) -> Alcotest.failf "legacy provenance: %s" e);
  (* ...but a malformed run_id field is an error, not trusted. *)
  write_file mpath
    (replace_once ~sub:"\"experiment\":\"t\""
       ~by:"\"experiment\":\"t\",\"run_id\":\"bogus\"" (read_file mpath));
  match Campaign.provenance ~dir with
  | Error e ->
      Alcotest.(check bool) "error mentions run_id" true (contains e "run_id")
  | Ok _ -> Alcotest.fail "malformed manifest run_id accepted"

(* -- Faults ----------------------------------------------------------------- *)

let faults_parse_roundtrip () =
  let cases =
    [
      ("", []);
      ("kill-trial:7", [ Faults.Kill_trial 7 ]);
      ("fail-lane:2", [ Faults.Fail_lane { lane = 2; always = false } ]);
      ("fail-lane:2:once", [ Faults.Fail_lane { lane = 2; always = false } ]);
      ("fail-lane:0:always", [ Faults.Fail_lane { lane = 0; always = true } ]);
      ( "kill-trial:3,fail-lane:1",
        [ Faults.Kill_trial 3; Faults.Fail_lane { lane = 1; always = false } ]
      );
    ]
  in
  List.iter
    (fun (spec, want) ->
      match Faults.parse spec with
      | Ok got ->
          if got <> want then Alcotest.failf "parse %S: wrong clauses" spec;
          (match Faults.parse (Faults.to_string got) with
          | Ok again when again = got -> ()
          | _ -> Alcotest.failf "to_string of %S not parseable back" spec)
      | Error e -> Alcotest.failf "parse %S: %s" spec e)
    cases;
  List.iter
    (fun spec ->
      match Faults.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse %S: accepted" spec)
    [ "bogus"; "kill-trial:0"; "kill-trial:x"; "fail-lane:-1"; "fail-lane:1:n" ];
  Alcotest.(check int) "exit code is EX_SOFTWARE" 70 Faults.kill_exit_code

let () =
  Alcotest.run "resume"
    [
      ( "crc32",
        [
          Alcotest.test_case "known answers" `Quick crc32_known_answers;
          Alcotest.test_case "hex round trip" `Quick crc32_hex_roundtrip;
        ] );
      ( "rng",
        [
          qcheck prop_rng_save_restore;
          Alcotest.test_case "restore validates" `Quick rng_restore_validates;
        ] );
      ( "snapshot",
        [
          qcheck prop_eprocess_snapshot_roundtrip;
          Alcotest.test_case "srw round trip" `Quick srw_snapshot_roundtrip;
          Alcotest.test_case "lazy-srw round trip" `Quick
            lazy_srw_snapshot_roundtrip;
          Alcotest.test_case "rotor round trip" `Quick rotor_snapshot_roundtrip;
          Alcotest.test_case "kernel-competing round trip (e-uar)" `Quick
            (competing_roundtrip Kengine.E_uar);
          Alcotest.test_case "kernel-competing round trip (rotor)" `Quick
            (competing_roundtrip Kengine.Rotor);
          Alcotest.test_case "kernel-competing counter recount" `Quick
            competing_counter_recount;
          Alcotest.test_case "run provenance" `Quick snapshot_provenance;
          Alcotest.test_case "rejects corruption" `Quick
            snapshot_rejects_corruption;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "memoizes and resumes" `Quick
            campaign_memoizes_and_resumes;
          Alcotest.test_case "tolerates torn journal" `Quick
            campaign_tolerates_truncated_journal;
          Alcotest.test_case "describe" `Quick campaign_describe;
          Alcotest.test_case "provenance and v1 resume" `Quick
            campaign_provenance_and_v1_resume;
        ] );
      ( "faults",
        [
          Alcotest.test_case "spec grammar" `Quick faults_parse_roundtrip;
        ] );
    ]
