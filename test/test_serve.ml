(* Conformance + lifecycle battery for the eprocd session service
   (Ewalk_serve): protocol validation unit tests, router-level
   malformed-request rejection (structured 4xx, never a crash), qcheck
   fuzz over request shapes and raw request bytes, the session-lifecycle
   equivalence property (any interleaving of step / trace / hibernate /
   rehydrate is bit-identical to an uninterrupted session — event
   streams and final snapshot payloads compared byte-for-byte), restart
   recovery, and concurrent-client determinism over real loopback HTTP
   at pool sizes 1 and 4. *)

module Obs = Ewalk_obs
module Json = Obs.Json
module Serve = Obs.Serve
module Trace = Obs.Trace
module Proto = Ewalk_serve.Proto
module Session = Ewalk_serve.Session
module Registry = Ewalk_serve.Registry
module Router = Ewalk_serve.Router
module Client = Ewalk_serve.Client
module Daemon = Ewalk_serve.Daemon
module Pool = Ewalk_par.Pool

let qcheck = QCheck_alcotest.to_alcotest

(* -- scratch directories ---------------------------------------------------- *)

let temp_dir () =
  let d = Filename.temp_file "ewalk-serve" ".d" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_registry ?resident_cap ?max_n f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () -> f (Registry.create ?resident_cap ?max_n ~state_dir:dir ()))

let with_daemon ?resident_cap ?pool f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      match Daemon.start ~state_dir:dir ?resident_cap ?pool () with
      | Error e -> Alcotest.fail ("daemon start: " ^ e)
      | Ok d ->
          Fun.protect ~finally:(fun () -> ignore (Daemon.stop d)) (fun () -> f d))

(* -- router-level request plumbing ------------------------------------------ *)

let req ?(meth = "GET") ?(query = []) ?(body = "") path =
  { Serve.rq_meth = meth; rq_path = path; rq_query = query; rq_body = body }

let status r = Serve.response_status r
let body_of r = Option.value ~default:"" (Serve.response_body r)

(* Every error response must carry the one structured envelope:
   {"error":{"code":...,"message":...}}. *)
let error_code r =
  match Json.of_string (body_of r) with
  | Error e -> Alcotest.fail ("error body is not JSON: " ^ e)
  | Ok j -> (
      match
        Option.bind (Json.member "error" j) (fun e ->
            Option.bind (Json.member "code" e) Json.to_string_opt)
      with
      | Some c -> c
      | None -> Alcotest.fail ("no error.code in: " ^ body_of r))

let json_member_int name r =
  match Json.of_string (body_of r) with
  | Error e -> Alcotest.fail ("body is not JSON: " ^ e)
  | Ok j -> (
      match Option.bind (Json.member name j) Json.to_int_opt with
      | Some v -> v
      | None -> Alcotest.fail ("no int member " ^ name ^ " in: " ^ body_of r))

let json_member_string name r =
  match Json.of_string (body_of r) with
  | Error e -> Alcotest.fail ("body is not JSON: " ^ e)
  | Ok j -> (
      match Option.bind (Json.member name j) Json.to_string_opt with
      | Some v -> v
      | None -> Alcotest.fail ("no string member " ^ name ^ " in: " ^ body_of r))

let cfg_body ?(process = "e-process") ?(seed = 1) ?(walkers = 1)
    ?(mode = "cooperating") ~family ~n () =
  Json.to_string
    (Json.Obj
       [
         ("family", Json.String family);
         ("n", Json.Int n);
         ("process", Json.String process);
         ("seed", Json.Int seed);
         ("walkers", Json.Int walkers);
         ("mode", Json.String mode);
       ])

(* -- Proto validation ------------------------------------------------------- *)

let ok_or_fail = function
  | Ok v -> v
  | Error (e : Proto.error) ->
      Alcotest.fail (Printf.sprintf "%d %s: %s" e.status e.code e.message)

let proto_config_defaults () =
  let j =
    ok_or_fail
      (Proto.parse_body {|{"family":"cycle","n":16}|} |> fun r ->
       Result.map_error (fun e -> e) r)
  in
  let c = ok_or_fail (Proto.config_of_json ~max_n:1000 j) in
  Alcotest.(check string) "family" "cycle" c.Proto.family;
  Alcotest.(check int) "n" 16 c.Proto.n;
  Alcotest.(check string) "process" "e-process" c.Proto.process;
  Alcotest.(check int) "seed" 1 c.Proto.seed;
  Alcotest.(check int) "walkers" 1 c.Proto.walkers;
  Alcotest.(check string) "mode" "cooperating"
    (Proto.mode_name c.Proto.mode)

let expect_proto_error ~status ~code = function
  | Ok (_ : Proto.config) -> Alcotest.fail "validation accepted a bad config"
  | Error (e : Proto.error) ->
      Alcotest.(check int) "status" status e.Proto.status;
      Alcotest.(check string) "code" code e.Proto.code

let proto_config_rejections () =
  let parse s = ok_or_fail (Proto.parse_body s) in
  let of_json ?(max_n = 1000) s = Proto.config_of_json ~max_n (parse s) in
  expect_proto_error ~status:400 ~code:"missing_field"
    (of_json {|{"n":16}|});
  expect_proto_error ~status:400 ~code:"missing_field"
    (of_json {|{"family":"cycle"}|});
  expect_proto_error ~status:400 ~code:"bad_n"
    (of_json {|{"family":"cycle","n":1}|});
  expect_proto_error ~status:400 ~code:"bad_n"
    (of_json {|{"family":"cycle","n":-40}|});
  expect_proto_error ~status:413 ~code:"graph_too_large"
    (of_json {|{"family":"cycle","n":1001}|});
  expect_proto_error ~status:400 ~code:"bad_walkers"
    (of_json {|{"family":"cycle","n":16,"walkers":0}|});
  expect_proto_error ~status:400 ~code:"bad_walkers"
    (of_json
       (Printf.sprintf {|{"family":"cycle","n":16,"walkers":%d}|}
          (Proto.max_walkers + 1)));
  expect_proto_error ~status:400 ~code:"bad_field"
    (of_json {|{"family":"cycle","n":16,"mode":"sideways"}|});
  expect_proto_error ~status:400 ~code:"bad_field"
    (of_json {|{"family":"cycle","n":16,"seed":"seven"}|});
  expect_proto_error ~status:400 ~code:"unknown_process"
    (of_json {|{"family":"cycle","n":16,"process":"levy-flight"}|});
  (* lazy-srw has no kernel port: fine alone, rejected multi-walker. *)
  ignore
    (ok_or_fail (of_json {|{"family":"cycle","n":16,"process":"lazy-srw"}|}));
  expect_proto_error ~status:400 ~code:"unknown_process"
    (of_json {|{"family":"cycle","n":16,"process":"lazy-srw","walkers":2}|});
  expect_proto_error ~status:400 ~code:"unknown_process"
    (of_json
       {|{"family":"cycle","n":16,"process":"lazy-srw","mode":"competing"}|});
  expect_proto_error ~status:400 ~code:"bad_family"
    (of_json
       (Printf.sprintf {|{"family":"%s","n":16}|} (String.make 80 'x')));
  (match Proto.parse_body "{nope" with
  | Error e -> Alcotest.(check string) "bad json code" "bad_json" e.Proto.code
  | Ok _ -> Alcotest.fail "parsed garbage");
  match Proto.config_of_json ~max_n:1000 (Json.Int 3) with
  | Error e -> Alcotest.(check string) "non-object" "bad_json" e.Proto.code
  | Ok _ -> Alcotest.fail "accepted a non-object body"

let proto_step_requests () =
  let parse s = ok_or_fail (Proto.parse_body s) in
  (match Proto.step_request_of_json (parse {|{"steps":5}|}) with
  | Ok (Proto.Steps 5) -> ()
  | _ -> Alcotest.fail "steps:5");
  (match Proto.step_request_of_json (parse {|{"until":"cover"}|}) with
  | Ok (Proto.To_cover None) -> ()
  | _ -> Alcotest.fail "until cover");
  (match Proto.step_request_of_json (parse {|{"until":"cover","cap":9}|}) with
  | Ok (Proto.To_cover (Some 9)) -> ()
  | _ -> Alcotest.fail "until cover cap");
  let bad s code =
    match Proto.step_request_of_json (parse s) with
    | Error e -> Alcotest.(check string) s code e.Proto.code
    | Ok _ -> Alcotest.fail ("accepted " ^ s)
  in
  bad {|{"steps":0}|} "bad_steps";
  bad {|{"steps":-12}|} "bad_steps";
  bad
    (Printf.sprintf {|{"steps":%d}|} (Proto.max_steps_per_request + 1))
    "bad_steps";
  bad {|{"steps":"many"}|} "bad_field";
  bad {|{"until":"moon"}|} "bad_field";
  bad {|{"until":"cover","cap":-1}|} "bad_field";
  bad {|{}|} "missing_field";
  (match Proto.steps_query [ ("steps", "12") ] with
  | Ok 12 -> ()
  | _ -> Alcotest.fail "steps=12");
  (match Proto.steps_query [] with
  | Error e -> Alcotest.(check string) "no steps" "missing_field" e.Proto.code
  | Ok _ -> Alcotest.fail "accepted missing steps");
  match Proto.steps_query [ ("steps", "oodles") ] with
  | Error e -> Alcotest.(check string) "bad steps" "bad_field" e.Proto.code
  | Ok _ -> Alcotest.fail "accepted non-numeric steps"

(* -- router: malformed requests are structured 4xx, never a crash ----------- *)

let router_malformed () =
  with_registry ~max_n:512 @@ fun reg ->
  let h = Router.handler reg in
  let r = h (req ~meth:"POST" ~body:"{nope" "/sessions") in
  Alcotest.(check int) "bad json status" 400 (status r);
  Alcotest.(check string) "bad json code" "bad_json" (error_code r);
  let r = h (req ~meth:"POST" ~body:{|{"family":"cycle"}|} "/sessions") in
  Alcotest.(check int) "missing n" 400 (status r);
  let r =
    h (req ~meth:"POST" ~body:{|{"family":"cycle","n":4096}|} "/sessions")
  in
  Alcotest.(check int) "oversized graph" 413 (status r);
  Alcotest.(check string) "oversized code" "graph_too_large" (error_code r);
  let r = h (req "/sessions/s999999") in
  Alcotest.(check int) "unknown id" 404 (status r);
  Alcotest.(check string) "unknown code" "unknown_session" (error_code r);
  let r =
    h (req ~meth:"POST" ~body:{|{"steps":3}|} "/sessions/s999999/step")
  in
  Alcotest.(check int) "step unknown id" 404 (status r);
  let r = h (req ~meth:"DELETE" "/sessions/s999999") in
  Alcotest.(check int) "delete unknown id" 404 (status r);
  let r = h (req ~query:[ ("steps", "5") ] "/sessions/s999999/trace") in
  Alcotest.(check int) "trace unknown id" 404 (status r);
  (* A real session still rejects malformed step bodies. *)
  let r =
    h (req ~meth:"POST" ~body:(cfg_body ~family:"cycle" ~n:16 ()) "/sessions")
  in
  Alcotest.(check int) "create" 201 (status r);
  let id = json_member_string "id" r in
  let step b = h (req ~meth:"POST" ~body:b ("/sessions/" ^ id ^ "/step")) in
  Alcotest.(check int) "negative steps" 400 (status (step {|{"steps":-4}|}));
  Alcotest.(check int) "zero steps" 400 (status (step {|{"steps":0}|}));
  Alcotest.(check int) "giant steps" 400
    (status (step {|{"steps":999999999999}|}));
  Alcotest.(check int) "garbage step body" 400 (status (step "]["));
  let r = h (req ~query:[ ("steps", "no") ] ("/sessions/" ^ id ^ "/trace")) in
  Alcotest.(check int) "bad trace steps" 400 (status r);
  let r = h (req ~meth:"PUT" "/sessions") in
  Alcotest.(check int) "bad method" 405 (status r);
  Alcotest.(check string) "bad method code" "method_not_allowed" (error_code r);
  let r = h (req "/frobnicate") in
  Alcotest.(check int) "unknown path" 404 (status r);
  (* Nothing above may have created state beyond the one session. *)
  Alcotest.(check int) "session count" 1 (Registry.session_count reg)

let router_lifecycle () =
  with_registry @@ fun reg ->
  let h = Router.handler reg in
  let r =
    h
      (req ~meth:"POST"
         ~body:(cfg_body ~family:"regular:4" ~n:24 ~seed:11 ())
         "/sessions")
  in
  Alcotest.(check int) "create" 201 (status r);
  let id = json_member_string "id" r in
  let r = h (req ~meth:"POST" ~body:{|{"steps":25}|} ("/sessions/" ^ id ^ "/step")) in
  Alcotest.(check int) "step ok" 200 (status r);
  Alcotest.(check int) "advanced" 25 (json_member_int "steps_advanced" r);
  Alcotest.(check int) "total" 25 (json_member_int "steps" r);
  let r = h (req ~meth:"POST" ("/sessions/" ^ id ^ "/hibernate")) in
  Alcotest.(check int) "hibernate" 200 (status r);
  (match Registry.find reg id with
  | Some s ->
      Alcotest.(check bool) "snapshot on disk" true
        (Sys.file_exists (Session.snapshot_path s));
      Alcotest.(check bool) "not resident" false (Session.resident s)
  | None -> Alcotest.fail "session vanished");
  (* Stepping a hibernated session rehydrates it transparently. *)
  let r = h (req ~meth:"POST" ~body:{|{"steps":15}|} ("/sessions/" ^ id ^ "/step")) in
  Alcotest.(check int) "step after rehydrate" 200 (status r);
  Alcotest.(check int) "total after rehydrate" 40 (json_member_int "steps" r);
  let r = h (req ~meth:"POST" ~body:{|{"until":"cover"}|} ("/sessions/" ^ id ^ "/step")) in
  Alcotest.(check int) "run to cover" 200 (status r);
  (match Json.of_string (body_of r) with
  | Ok j -> (
      match Option.bind (Json.member "covered" j) (function
        | Json.Bool b -> Some b
        | _ -> None) with
      | Some true -> ()
      | _ -> Alcotest.fail "run-to-cover did not cover")
  | Error e -> Alcotest.fail e);
  let r = h (req "/sessions") in
  Alcotest.(check int) "list" 200 (status r);
  let r = h (req ~meth:"DELETE" ("/sessions/" ^ id)) in
  Alcotest.(check int) "delete" 200 (status r);
  let r = h (req ("/sessions/" ^ id)) in
  Alcotest.(check int) "deleted is gone" 404 (status r);
  Alcotest.(check int) "no sessions left" 0 (Registry.session_count reg)

(* qcheck: no request shape may crash the router or escape the
   structured-status contract. *)
let prop_router_fuzz =
  let gen =
    QCheck.Gen.(
      triple
        (oneofl [ "GET"; "POST"; "DELETE"; "PUT"; "PATCH"; "FROB"; "" ])
        (oneof
           [
             string_size ~gen:printable (int_bound 40);
             oneofl
               [
                 "/sessions";
                 "/sessions/";
                 "/sessions/s000001/step";
                 "/sessions/../../etc/passwd";
                 "/sessions/s000001/trace";
                 "/metrics";
                 "//";
               ];
           ])
        (string_size ~gen:printable (int_bound 60)))
  in
  let arb =
    QCheck.make
      ~print:(fun (m, p, b) -> Printf.sprintf "%s %s body=%S" m p b)
      gen
  in
  QCheck.Test.make ~count:200
    ~name:"router: arbitrary requests never crash, statuses stay structured"
    arb
    (fun (meth, path, body) ->
      with_registry ~max_n:256 @@ fun reg ->
      let r = Router.handler reg (req ~meth ~body path) in
      let st = status r in
      if st < 200 || st > 599 then
        QCheck.Test.fail_reportf "status %d out of range" st;
      true)

(* -- the lifecycle equivalence property ------------------------------------- *)

type op = Step of int | Stream of int | Hib | Wake

let op_name = function
  | Step k -> Printf.sprintf "step:%d" k
  | Stream k -> Printf.sprintf "stream:%d" k
  | Hib -> "hibernate"
  | Wake -> "rehydrate"

let scenario_print (cfg, ops) =
  Printf.sprintf "%s n=%d %s seed=%d w=%d %s [%s]" cfg.Proto.family
    cfg.Proto.n cfg.Proto.process cfg.Proto.seed cfg.Proto.walkers
    (Proto.mode_name cfg.Proto.mode)
    (String.concat "; " (List.map op_name ops))

let scenario_gen =
  let open QCheck.Gen in
  let family = oneofl [ "cycle"; "regular:4"; "torus"; "complete" ] in
  let single =
    family >>= fun family ->
    oneofl [ "e-process"; "e-process:lowest"; "srw"; "lazy-srw"; "rotor" ]
    >>= fun process ->
    int_range 12 40 >>= fun n ->
    int_range 1 999 >>= fun seed ->
    return
      { Proto.family; n; process; seed; walkers = 1; mode = Proto.Cooperating }
  in
  let kernel =
    family >>= fun family ->
    oneofl [ "e-process"; "e-process:highest"; "srw"; "rotor" ]
    >>= fun process ->
    int_range 12 40 >>= fun n ->
    int_range 1 999 >>= fun seed ->
    int_range 2 3 >>= fun walkers ->
    oneofl [ Proto.Cooperating; Proto.Competing ] >>= fun mode ->
    return { Proto.family; n; process; seed; walkers; mode }
  in
  let op =
    frequency
      [
        (5, map (fun k -> Step (1 + k)) (int_bound 40));
        (3, map (fun k -> Stream (1 + k)) (int_bound 30));
        (2, return Hib);
        (1, return Wake);
      ]
  in
  pair (frequency [ (3, single); (2, kernel) ]) (list_size (int_range 1 10) op)

let apply_op reg id buf op =
  match op with
  | Step k ->
      Registry.with_session reg id (fun s ~pool ->
          Result.map (fun (_ : int) -> ()) (Session.step ?pool s k))
  | Stream k ->
      Registry.with_session reg id (fun s ~pool:_ ->
          Result.map
            (fun (_ : int) -> ())
            (Session.stream s ~max_steps:k ~push:(fun ev ->
                 Buffer.add_string buf (Trace.event_to_string ev);
                 Buffer.add_char buf '\n')))
  | Hib -> Registry.hibernate reg id
  | Wake ->
      Registry.with_session reg id (fun s ~pool:_ ->
          ignore (Session.summarize s);
          Ok ())

let snapshot_payload path =
  match Json.of_string (read_file path) with
  | Error e -> QCheck.Test.fail_reportf "snapshot parse: %s" e
  | Ok j -> (
      match Json.member "payload" j with
      | Some p -> Json.to_string p
      | None -> QCheck.Test.fail_reportf "no payload member in %s" path)

let prop_lifecycle_equivalence =
  QCheck.Test.make ~count:30
    ~name:
      "session lifecycle: any step/stream/hibernate/rehydrate interleaving \
       is bit-identical to an uninterrupted run"
    (QCheck.make ~print:scenario_print scenario_gen)
    (fun (cfg, ops) ->
      let da = temp_dir () and db = temp_dir () in
      Fun.protect
        ~finally:(fun () ->
          rm_rf da;
          rm_rf db)
        (fun () ->
          let rega = Registry.create ~resident_cap:1 ~state_dir:da () in
          let regb = Registry.create ~state_dir:db () in
          let mk reg =
            match Registry.create_session reg cfg with
            | Ok s -> Session.id s
            | Error e -> QCheck.Test.fail_reportf "create: %s" e.Proto.message
          in
          let ida = mk rega and idb = mk regb in
          let bufa = Buffer.create 256 and bufb = Buffer.create 256 in
          let run reg id buf op =
            match apply_op reg id buf op with
            | Ok () -> ()
            | Error e ->
                QCheck.Test.fail_reportf "%s on %s: %s" (op_name op) id
                  e.Proto.message
          in
          List.iter
            (fun op ->
              run rega ida bufa op;
              (* The uninterrupted twin skips the durability ops. *)
              match op with
              | Step _ | Stream _ -> run regb idb bufb op
              | Hib | Wake -> ())
            ops;
          if Buffer.contents bufa <> Buffer.contents bufb then
            QCheck.Test.fail_reportf
              "event streams diverged:\n-- interleaved --\n%s\n-- straight \
               --\n%s"
              (Buffer.contents bufa) (Buffer.contents bufb);
          let suma =
            match Registry.with_session rega ida (fun s ~pool:_ ->
                Ok (Session.summarize s))
            with
            | Ok s -> s
            | Error e -> QCheck.Test.fail_reportf "summarize a: %s" e.Proto.message
          in
          let sumb =
            match Registry.with_session regb idb (fun s ~pool:_ ->
                Ok (Session.summarize s))
            with
            | Ok s -> s
            | Error e -> QCheck.Test.fail_reportf "summarize b: %s" e.Proto.message
          in
          if suma <> sumb then
            QCheck.Test.fail_reportf
              "summaries diverged: steps %d/%d pos %d/%d covered %b/%b"
              suma.Session.s_steps sumb.Session.s_steps suma.Session.s_position
              sumb.Session.s_position suma.Session.s_covered
              sumb.Session.s_covered;
          (* Final durable states must match byte-for-byte (the CRC-guarded
             snapshot payload is the full walk state). *)
          ignore (Registry.hibernate rega ida);
          ignore (Registry.hibernate regb idb);
          let path reg id =
            match Registry.find reg id with
            | Some s -> Session.snapshot_path s
            | None -> QCheck.Test.fail_reportf "session %s vanished" id
          in
          let pa = snapshot_payload (path rega ida)
          and pb = snapshot_payload (path regb idb) in
          if pa <> pb then
            QCheck.Test.fail_reportf "snapshot payloads diverged for %s"
              (scenario_print (cfg, ops));
          true))

(* -- restart recovery ------------------------------------------------------- *)

let registry_restart_recovery () =
  let dir = temp_dir () and dir' = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      rm_rf dir')
    (fun () ->
      let cfg =
        {
          Proto.family = "regular:4";
          n = 32;
          process = "e-process";
          seed = 23;
          walkers = 1;
          mode = Proto.Cooperating;
        }
      in
      let reg = Registry.create ~state_dir:dir () in
      let ids =
        List.map
          (fun seed ->
            match Registry.create_session reg { cfg with Proto.seed } with
            | Ok s -> Session.id s
            | Error e -> Alcotest.fail e.Proto.message)
          [ 23; 24; 25 ]
      in
      List.iteri
        (fun i id ->
          match
            Registry.with_session reg id (fun s ~pool ->
                Session.step ?pool s (10 * (i + 1)))
          with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e.Proto.message)
        ids;
      Alcotest.(check int) "hibernate_all" 3 (Registry.hibernate_all reg);
      (* A new registry over the same state dir re-adopts everything. *)
      let reg2 = Registry.create ~state_dir:dir () in
      Alcotest.(check int) "recovered count" 3 (Registry.session_count reg2);
      List.iteri
        (fun i id ->
          match Registry.find reg2 id with
          | Some s ->
              Alcotest.(check int)
                ("recovered steps " ^ id)
                (10 * (i + 1))
                (Session.summarize s).Session.s_steps
          | None -> Alcotest.fail ("lost session " ^ id))
        ids;
      (* Id allocation resumes above the recovered ids. *)
      (match Registry.create_session reg2 cfg with
      | Ok s -> Alcotest.(check string) "next id" "s000004" (Session.id s)
      | Error e -> Alcotest.fail e.Proto.message);
      (* Continuing a recovered session matches an uninterrupted twin. *)
      let twin = Registry.create ~state_dir:dir' () in
      let idt =
        match Registry.create_session twin { cfg with Proto.seed = 24 } with
        | Ok s -> Session.id s
        | Error e -> Alcotest.fail e.Proto.message
      in
      let stream_of reg id pre post =
        let buf = Buffer.create 128 in
        (match
           Registry.with_session reg id (fun s ~pool ->
               Result.bind
                 (if pre > 0 then
                    Result.map (fun (_ : int) -> ()) (Session.step ?pool s pre)
                  else Ok ())
                 (fun () ->
                   Session.stream s ~max_steps:post ~push:(fun ev ->
                       Buffer.add_string buf (Trace.event_to_string ev);
                       Buffer.add_char buf '\n')))
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e.Proto.message);
        Buffer.contents buf
      in
      let recovered = stream_of reg2 (List.nth ids 1) 7 12 in
      let straight = stream_of twin idt (20 + 7) 12 in
      Alcotest.(check string) "recovered stream matches twin" straight recovered)

(* -- the resident cap ------------------------------------------------------- *)

let registry_resident_cap () =
  with_registry ~resident_cap:2 @@ fun reg ->
  let cfg =
    {
      Proto.family = "cycle";
      n = 16;
      process = "e-process";
      seed = 1;
      walkers = 1;
      mode = Proto.Cooperating;
    }
  in
  let ids =
    List.map
      (fun seed ->
        match Registry.create_session reg { cfg with Proto.seed } with
        | Ok s -> Session.id s
        | Error e -> Alcotest.fail e.Proto.message)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check int) "sessions" 5 (Registry.session_count reg);
  Alcotest.(check bool) "cap holds" true (Registry.resident_count reg <= 2);
  (* Oldest sessions hibernated to disk. *)
  let hibernated =
    List.filter
      (fun id ->
        match Registry.find reg id with
        | Some s -> not (Session.resident s)
        | None -> false)
      ids
  in
  Alcotest.(check int) "evicted count" 3 (List.length hibernated);
  (* Touching an evicted session rehydrates it and stays under the cap. *)
  (match
     Registry.with_session reg (List.hd ids) (fun s ~pool ->
         Session.step ?pool s 5)
   with
  | Ok 5 -> ()
  | Ok k -> Alcotest.fail (Printf.sprintf "stepped to %d" k)
  | Error e -> Alcotest.fail e.Proto.message);
  Alcotest.(check bool) "cap still holds" true (Registry.resident_count reg <= 2)

(* -- loopback HTTP: transport conformance ----------------------------------- *)

let http_req d meth path body =
  match
    Client.request ~port:(Daemon.port d) ~meth ~path
      ?body:(if body = "" then None else Some body)
      ()
  with
  | Ok r -> r
  | Error e -> Alcotest.fail ("client: " ^ e)

let http_lifecycle () =
  with_daemon @@ fun d ->
  let r = http_req d "GET" "/healthz" "" in
  Alcotest.(check int) "healthz" 200 r.Client.status;
  Alcotest.(check string) "healthz body" "ok\n" r.Client.body;
  let r =
    http_req d "POST" "/sessions" (cfg_body ~family:"regular:4" ~n:32 ~seed:5 ())
  in
  Alcotest.(check int) "create" 201 r.Client.status;
  let id =
    match Json.of_string r.Client.body with
    | Ok j ->
        Option.value ~default:"?"
          (Option.bind (Json.member "id" j) Json.to_string_opt)
    | Error e -> Alcotest.fail e
  in
  let r = http_req d "POST" ("/sessions/" ^ id ^ "/step") {|{"steps":40}|} in
  Alcotest.(check int) "step" 200 r.Client.status;
  let r = http_req d "POST" ("/sessions/" ^ id ^ "/hibernate") "" in
  Alcotest.(check int) "hibernate" 200 r.Client.status;
  (* The trace endpoint streams chunked JSONL that parses back into
     events: prologue, resume (the walk is underway), steps, run_end. *)
  let r = http_req d "GET" ("/sessions/" ^ id ^ "/trace?steps=12") "" in
  Alcotest.(check int) "trace" 200 r.Client.status;
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' r.Client.body)
  in
  Alcotest.(check bool) "has prologue + steps" true (List.length lines >= 3);
  List.iteri
    (fun i l ->
      match Trace.event_of_string l with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "line %d: %s" i e))
    lines;
  let has_kind k =
    List.exists
      (fun l ->
        match Json.of_string l with
        | Ok j -> (
            match Option.bind (Json.member "type" j) Json.to_string_opt with
            | Some e -> e = k
            | None -> false)
        | Error _ -> false)
      lines
  in
  Alcotest.(check bool) "run_start" true (has_kind "run_start");
  Alcotest.(check bool) "resume" true (has_kind "resume");
  Alcotest.(check bool) "run_end" true (has_kind "run_end");
  (* /metrics must be valid OpenMetrics and carry the session gauges. *)
  let r = http_req d "GET" "/metrics" "" in
  Alcotest.(check int) "metrics" 200 r.Client.status;
  (match Obs.Export.validate r.Client.body with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("openmetrics: " ^ e));
  let has_line pre =
    List.exists
      (fun l -> String.length l >= String.length pre
                && String.sub l 0 (String.length pre) = pre)
      (String.split_on_char '\n' r.Client.body)
  in
  Alcotest.(check bool) "sessions gauge" true (has_line "ewalk_sessions ");
  Alcotest.(check bool) "hibernation counter" true
    (has_line "ewalk_hibernations_total");
  let r = http_req d "DELETE" ("/sessions/" ^ id) "" in
  Alcotest.(check int) "delete" 200 r.Client.status;
  let r = http_req d "GET" ("/sessions/" ^ id) "" in
  Alcotest.(check int) "gone" 404 r.Client.status

let http_quit_says_bye () =
  with_daemon @@ fun d ->
  let r = http_req d "GET" "/quit" "" in
  Alcotest.(check int) "quit status" 200 r.Client.status;
  Alcotest.(check string) "quit body" "bye\n" r.Client.body;
  (* The stop flag is set once "bye" has been written. *)
  let rec wait n =
    if Daemon.stopped d then ()
    else if n = 0 then Alcotest.fail "daemon did not stop after /quit"
    else begin
      Unix.sleepf 0.05;
      wait (n - 1)
    end
  in
  wait 100

(* Raw framing abuse: the daemon must answer (or close) and keep serving.
   Every probe is followed by a /healthz check. *)
let raw_probe port bytes =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (try
         ignore (Unix.write_substring fd bytes 0 (String.length bytes))
       with Unix.Unix_error _ -> ());
      (try Unix.shutdown fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error _ -> ());
      let buf = Bytes.create 4096 in
      let out = Buffer.create 128 in
      (try
         let rec drain () =
           let k = Unix.read fd buf 0 (Bytes.length buf) in
           if k > 0 then begin
             Buffer.add_subbytes out buf 0 k;
             drain ()
           end
         in
         drain ()
       with Unix.Unix_error _ -> ());
      Buffer.contents out)

let http_framing_abuse () =
  with_daemon @@ fun d ->
  let port = Daemon.port d in
  let corpus =
    [
      "";
      "\r\n\r\n";
      "GET\r\n\r\n";
      "GET /healthz\r\n\r\n";
      "FROB /sessions HTTP/1.1\r\n\r\n";
      "POST /sessions HTTP/1.1\r\nContent-Length: 10\r\n\r\n{";
      "POST /sessions HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
      "POST /sessions HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n";
      "\x00\x01\x02\xff\xfe garbage \x7f\r\n\r\n";
      String.make 5000 'A' ^ "\r\n\r\n";
      "GET /sessions/s000001/trace?steps= HTTP/1.1\r\n\r\n";
    ]
  in
  List.iteri
    (fun i bytes ->
      ignore (raw_probe port bytes);
      let r = http_req d "GET" "/healthz" "" in
      Alcotest.(check int)
        (Printf.sprintf "alive after probe %d" i)
        200 r.Client.status)
    corpus;
  (* Parse failures must still be structured JSON errors. *)
  let out = raw_probe port "GET\r\n\r\n" in
  Alcotest.(check bool) "structured framing error" true
    (let needle = "\"error\"" in
     let ln = String.length needle and lo = String.length out in
     let rec find i =
       i + ln <= lo && (String.sub out i ln = needle || find (i + 1))
     in
     find 0)

let prop_http_fuzz =
  (* No 'q' in the alphabet: a fuzzed probe must never spell /quit. *)
  let byte =
    QCheck.Gen.(
      frequency
        [
          (6, map Char.chr (int_range 32 110));
          (1, return '\r');
          (1, return '\n');
          (1, map Char.chr (int_range 0 31));
        ])
  in
  let gen = QCheck.Gen.(string_size ~gen:byte (int_bound 120)) in
  QCheck.Test.make ~count:40
    ~name:"transport: random request bytes never kill the daemon"
    (QCheck.make ~print:String.escaped gen)
    (fun bytes ->
      QCheck.assume (not (String.length bytes >= 4
                          && String.sub bytes 0 4 = "quit"));
      with_daemon @@ fun d ->
      ignore (raw_probe (Daemon.port d) bytes);
      let r = http_req d "GET" "/healthz" "" in
      r.Client.status = 200)

(* -- concurrent-session determinism ----------------------------------------- *)

(* Two clients (real domains, real sockets) drive identically-configured
   sessions on one daemon: their trace streams must be byte-identical,
   and identical across pool sizes 1 and 4. *)
let concurrent_determinism () =
  let drive port =
    let body = cfg_body ~family:"regular:4" ~n:48 ~seed:7 ~walkers:4 ~mode:"competing" () in
    let client () =
      match Client.request ~port ~meth:"POST" ~path:"/sessions" ~body () with
      | Error e -> Error e
      | Ok { Client.status = 201; body = b } -> (
          match Json.of_string b with
          | Error e -> Error e
          | Ok j -> (
              match Option.bind (Json.member "id" j) Json.to_string_opt with
              | None -> Error "no id"
              | Some id -> (
                  match
                    Client.request ~port ~meth:"POST"
                      ~path:("/sessions/" ^ id ^ "/step")
                      ~body:{|{"steps":30}|} ()
                  with
                  | Error e -> Error e
                  | Ok { Client.status = 200; _ } -> (
                      match
                        Client.request ~port ~meth:"GET"
                          ~path:("/sessions/" ^ id ^ "/trace?steps=40")
                          ()
                      with
                      | Error e -> Error e
                      | Ok { Client.status = 200; body } -> Ok body
                      | Ok r ->
                          Error (Printf.sprintf "trace: %d" r.Client.status))
                  | Ok r -> Error (Printf.sprintf "step: %d" r.Client.status))))
      | Ok r -> Error (Printf.sprintf "create: %d" r.Client.status)
    in
    let d1 = Domain.spawn client and d2 = Domain.spawn client in
    let r1 = Domain.join d1 and r2 = Domain.join d2 in
    match (r1, r2) with
    | Ok b1, Ok b2 -> (b1, b2)
    | Error e, _ | _, Error e -> Alcotest.fail ("client: " ^ e)
  in
  let with_pool jobs f =
    if jobs <= 1 then f None
    else begin
      let pool = Pool.create ~jobs () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () ->
          f (Some pool))
    end
  in
  let run jobs =
    with_pool jobs @@ fun pool ->
    with_daemon ?pool @@ fun d -> drive (Daemon.port d)
  in
  let a1, a2 = run 1 in
  Alcotest.(check bool) "streams non-trivial" true (String.length a1 > 200);
  Alcotest.(check string) "jobs=1: two clients identical" a1 a2;
  let b1, b2 = run 4 in
  Alcotest.(check string) "jobs=4: two clients identical" b1 b2;
  Alcotest.(check string) "jobs=1 and jobs=4 identical" a1 b1

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "config defaults" `Quick proto_config_defaults;
          Alcotest.test_case "config rejections" `Quick proto_config_rejections;
          Alcotest.test_case "step requests" `Quick proto_step_requests;
        ] );
      ( "router",
        [
          Alcotest.test_case "malformed requests" `Quick router_malformed;
          Alcotest.test_case "session lifecycle" `Quick router_lifecycle;
          qcheck prop_router_fuzz;
        ] );
      ( "lifecycle",
        [
          qcheck prop_lifecycle_equivalence;
          Alcotest.test_case "restart recovery" `Quick
            registry_restart_recovery;
          Alcotest.test_case "resident cap eviction" `Quick
            registry_resident_cap;
        ] );
      ( "http",
        [
          Alcotest.test_case "lifecycle over loopback" `Quick http_lifecycle;
          Alcotest.test_case "/quit answers bye" `Quick http_quit_says_bye;
          Alcotest.test_case "framing abuse" `Quick http_framing_abuse;
          qcheck prop_http_fuzz;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "concurrent clients, jobs 1 vs 4" `Quick
            concurrent_determinism;
        ] );
    ]
