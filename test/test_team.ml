(* Tests for the multi-walker Team E-process and its shared bookkeeping. *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Team = Ewalk_kernel.Team
module Unvisited = Ewalk.Unvisited
module Coverage = Ewalk.Coverage
module Cover = Ewalk.Cover
module Rng = Ewalk_prng.Rng

let qcheck = QCheck_alcotest.to_alcotest

(* -- Unvisited bookkeeping ---------------------------------------------------- *)

let unvisited_initial () =
  let g = Gen_classic.torus2d 3 3 in
  let u = Unvisited.create g in
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check int) "all live" (Graph.degree g v) (Unvisited.count u v)
  done

let unvisited_retire () =
  let g = Gen_classic.cycle 4 in
  let u = Unvisited.create g in
  Unvisited.retire_edge u 0;
  let a, b = Graph.endpoints g 0 in
  Alcotest.(check int) "endpoint a" 1 (Unvisited.count u a);
  Alcotest.(check int) "endpoint b" 1 (Unvisited.count u b);
  (* The retired edge no longer appears among live slots. *)
  for v = 0 to 3 do
    Array.iter
      (fun e -> Alcotest.(check bool) "edge 0 gone" true (e <> 0))
      (Unvisited.incident_edges u v)
  done

let unvisited_self_loop () =
  let g = Graph.of_edges ~n:1 [ (0, 0) ] in
  let u = Unvisited.create g in
  Alcotest.(check int) "loop counts twice" 2 (Unvisited.count u 0);
  Alcotest.(check int) "listed once" 1
    (Array.length (Unvisited.incident_edges u 0));
  Unvisited.retire_edge u 0;
  Alcotest.(check int) "both slots retired" 0 (Unvisited.count u 0)

let unvisited_slot_with_edge () =
  let g = Gen_classic.cycle 5 in
  let u = Unvisited.create g in
  let slot = Unvisited.slot_with_edge u 0 0 in
  Alcotest.(check int) "slot carries edge" 0 (Graph.slot_edge g slot);
  Unvisited.retire_edge u 0;
  Alcotest.check_raises "gone" Not_found (fun () ->
      ignore (Unvisited.slot_with_edge u 0 0))

(* -- Team --------------------------------------------------------------------- *)

let team_validation () =
  let g = Gen_classic.cycle 5 in
  let rng = Rng.create () in
  Alcotest.check_raises "no walkers" (Invalid_argument "Team.create: no walkers")
    (fun () -> ignore (Team.create g rng ~starts:[]));
  Alcotest.check_raises "bad start"
    (Invalid_argument "Team.create: start out of range") (fun () ->
      ignore (Team.create g rng ~starts:[ 9 ]));
  Alcotest.check_raises "bad count"
    (Invalid_argument "Team.create_spread: walkers < 1") (fun () ->
      ignore (Team.create_spread g rng ~walkers:0))

let team_single_walker_covers_like_eprocess () =
  (* On a cycle, one walker must tour deterministically: n - 1 steps to
     vertex cover. *)
  let n = 15 in
  let g = Gen_classic.cycle n in
  let rng = Rng.create ~seed:1 () in
  let t = Team.create g rng ~starts:[ 0 ] in
  Alcotest.(check (option int)) "cycle tour" (Some (n - 1))
    (Cover.run_until_vertex_cover (Team.process t))

let team_counts_rounds () =
  let g = Gen_classic.torus2d 4 4 in
  let rng = Rng.create ~seed:2 () in
  let t = Team.create g rng ~starts:[ 0; 5; 10 ] in
  Alcotest.(check int) "3 walkers" 3 (Team.walkers t);
  Team.step_round t;
  Alcotest.(check int) "one round" 1 (Team.rounds t);
  Alcotest.(check int) "3 steps" 3 (Team.steps t);
  Alcotest.(check int) "positions array" 3 (Array.length (Team.positions t))

let team_covers_even_graphs () =
  let rng = Rng.create ~seed:3 () in
  let g = Gen_regular.random_regular_connected rng 500 4 in
  List.iter
    (fun k ->
      let t = Team.create_spread g rng ~walkers:k in
      match
        Cover.run_until_vertex_cover ~cap:(Cover.default_cap g)
          (Team.process t)
      with
      | Some _ -> ()
      | None -> Alcotest.fail (Printf.sprintf "%d walkers capped" k))
    [ 1; 2; 4; 8 ]

let team_total_work_stays_linear () =
  (* Shared marks: the team's total work to cover stays O(n), independent of
     the walker count (the marks are consumed once whoever visits them). *)
  let rng = Rng.create ~seed:4 () in
  let n = 2_000 in
  let g = Gen_regular.random_regular_connected rng n 4 in
  List.iter
    (fun k ->
      let t = Team.create_spread g rng ~walkers:k in
      match
        Cover.run_until_vertex_cover ~cap:(Cover.default_cap g)
          (Team.process t)
      with
      | Some steps ->
          Alcotest.(check bool)
            (Printf.sprintf "%d walkers: %d steps <= 5n" k steps)
            true
            (steps <= 5 * n)
      | None -> Alcotest.fail "capped")
    [ 1; 4; 16 ]

let team_edge_marks_shared () =
  (* Once every edge is covered the blue steps across all walkers total m:
     no edge is claimed twice. *)
  let rng = Rng.create ~seed:5 () in
  let g = Gen_regular.random_regular_connected rng 300 4 in
  let t = Team.create_spread g rng ~walkers:4 in
  match
    Cover.run_until_edge_cover ~cap:(Cover.default_cap g) (Team.process t)
  with
  | None -> Alcotest.fail "capped"
  | Some _ ->
      let cov = Team.coverage t in
      Alcotest.(check bool) "all edges visited" true
        (Coverage.all_edges_visited cov)

let prop_team_covers =
  QCheck.Test.make ~name:"team covers connected even graphs for any k"
    ~count:30
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, k) ->
      let rng = Rng.create ~seed () in
      let g = Gen_regular.cycle_union rng 20 2 in
      let t = Team.create_spread g rng ~walkers:k in
      Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) (Team.process t)
      <> None)

let () =
  Alcotest.run "team"
    [
      ( "unvisited",
        [
          Alcotest.test_case "initial" `Quick unvisited_initial;
          Alcotest.test_case "retire" `Quick unvisited_retire;
          Alcotest.test_case "self loop" `Quick unvisited_self_loop;
          Alcotest.test_case "slot with edge" `Quick unvisited_slot_with_edge;
        ] );
      ( "team",
        [
          Alcotest.test_case "validation" `Quick team_validation;
          Alcotest.test_case "single walker tour" `Quick
            team_single_walker_covers_like_eprocess;
          Alcotest.test_case "rounds" `Quick team_counts_rounds;
          Alcotest.test_case "covers" `Quick team_covers_even_graphs;
          Alcotest.test_case "linear total work" `Quick
            team_total_work_stays_linear;
          Alcotest.test_case "shared marks" `Quick team_edge_marks_shared;
        ] );
      ("properties", [ qcheck prop_team_covers ]);
    ]
