(* Tests for the baseline walk processes: SRW (plain/lazy/weighted),
   rotor-router, RWC(d), locally fair strategies, and the V-process. *)

module Graph = Ewalk_graph.Graph
module Gen_classic = Ewalk_graph.Gen_classic
module Gen_regular = Ewalk_graph.Gen_regular
module Traversal = Ewalk_graph.Traversal
module Coverage = Ewalk.Coverage
module Cover = Ewalk.Cover
module Srw = Ewalk.Srw
module Rotor = Ewalk.Rotor
module Rwc = Ewalk.Rwc
module Fair = Ewalk.Fair
module Vprocess = Ewalk.Vprocess
module Rng = Ewalk_prng.Rng

let qcheck = QCheck_alcotest.to_alcotest

(* -- SRW -------------------------------------------------------------------- *)

let srw_covers_cycle () =
  let g = Gen_classic.cycle 20 in
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed () in
      let t = Srw.create g rng ~start:0 in
      match Cover.run_until_vertex_cover ~cap:1_000_000 (Srw.process t) with
      | Some s ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: at least n-1 steps" seed)
            true (s >= 19)
      | None -> Alcotest.failf "seed %d: srw failed to cover a cycle" seed)
    [ 1; 2; 3; 4 ]

let srw_validation () =
  let g = Gen_classic.cycle 4 in
  Alcotest.check_raises "bad start"
    (Invalid_argument "Srw.create: start out of range") (fun () ->
      ignore (Srw.create g (Rng.create ()) ~start:9));
  let iso = Graph.of_edges ~n:1 [] in
  let t = Srw.create iso (Rng.create ()) ~start:0 in
  Alcotest.check_raises "isolated"
    (Invalid_argument "Srw.step: isolated vertex") (fun () -> Srw.step t)

let srw_stationary_visits () =
  (* Long-run visit frequencies approach pi = d(v)/2m: on a lollipop a
     clique vertex must be visited about d(clique)/d(tip) times as often as
     the path tip. *)
  let g = Gen_classic.lollipop 6 6 in
  let rng = Rng.create ~seed:2 () in
  let t = Srw.create g rng ~start:0 in
  let steps = 400_000 in
  Cover.run_steps (Srw.process t) steps;
  let c = Srw.coverage t in
  let clique_vertex = 0 and tip = Graph.n g - 1 in
  let ratio =
    float_of_int (Coverage.visit_count c clique_vertex)
    /. float_of_int (max 1 (Coverage.visit_count c tip))
  in
  let expected =
    float_of_int (Graph.degree g clique_vertex)
    /. float_of_int (Graph.degree g tip)
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f ~ %.2f" ratio expected)
    true
    (ratio > 0.6 *. expected && ratio < 1.4 *. expected)

let lazy_walk_stays () =
  let g = Gen_classic.cycle 10 in
  let rng = Rng.create ~seed:3 () in
  let t = Srw.create_lazy g rng ~start:0 in
  let stays = ref 0 in
  let prev = ref (Srw.position t) in
  for _ = 1 to 10_000 do
    Srw.step t;
    if Srw.position t = !prev then incr stays;
    prev := Srw.position t
  done;
  (* Roughly half the steps stay put. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d/10000 ~ 5000 stays" !stays)
    true
    (!stays > 4500 && !stays < 5500)

let weighted_walk_bias () =
  (* Triangle with one overwhelming weight: from vertex 0 the walk should
     almost always take the heavy edge (0,1). *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let weights = [| 1000.0; 1.0; 1.0 |] in
  let rng = Rng.create ~seed:4 () in
  let heavy = ref 0 in
  let trials = 2_000 in
  for _ = 1 to trials do
    let t = Srw.create_weighted g rng ~weights ~start:0 in
    Srw.step t;
    if Srw.position t = 1 then incr heavy
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d took heavy edge" !heavy trials)
    true
    (float_of_int !heavy /. float_of_int trials > 0.95)

let weighted_walk_validation () =
  let g = Gen_classic.cycle 3 in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Srw.create_weighted: weight array length <> m")
    (fun () ->
      ignore (Srw.create_weighted g (Rng.create ()) ~weights:[| 1.0 |] ~start:0));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Srw.create_weighted: non-positive weight") (fun () ->
      ignore
        (Srw.create_weighted g (Rng.create ()) ~weights:[| 1.0; 0.0; 1.0 |]
           ~start:0))

let weighted_uniform_equals_srw_distribution () =
  (* With equal weights the one-step distribution is uniform over
     neighbours. *)
  let g = Gen_classic.star 5 in
  let rng = Rng.create ~seed:5 () in
  let counts = Array.make 5 0 in
  for _ = 1 to 8_000 do
    let t = Srw.create_weighted g rng ~weights:(Array.make 4 2.5) ~start:0 in
    Srw.step t;
    counts.(Srw.position t) <- counts.(Srw.position t) + 1
  done;
  for v = 1 to 4 do
    Alcotest.(check bool) "roughly uniform" true
      (counts.(v) > 1_700 && counts.(v) < 2_300)
  done

let srw_hitting_time () =
  let g = Gen_classic.cycle 8 in
  let rng = Rng.create ~seed:6 () in
  Alcotest.(check (option int)) "self hit is 0" (Some 0)
    (Srw.hitting_time g rng ~from:3 ~target:3);
  match Srw.hitting_time g rng ~from:0 ~target:4 with
  | Some t -> Alcotest.(check bool) "at least distance" true (t >= 4)
  | None -> Alcotest.fail "hitting time capped on a cycle"


let srw_one_step_uniform () =
  (* From a degree-4 vertex each neighbour is chosen with probability 1/4. *)
  let g = Gen_classic.torus2d 5 5 in
  let rng = Rng.create ~seed:20 () in
  let counts = Hashtbl.create 8 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let t = Srw.create g rng ~start:0 in
    Srw.step t;
    let w = Srw.position t in
    Hashtbl.replace counts w
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts w))
  done;
  Alcotest.(check int) "four neighbours seen" 4 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "within 5% of uniform" true
        (abs (c - (trials / 4)) < trials / 20))
    counts

let eprocess_blue_choice_uniform () =
  (* The uar rule picks uniformly among unvisited incident edges. *)
  let g = Gen_classic.torus2d 5 5 in
  let rng = Rng.create ~seed:21 () in
  let counts = Hashtbl.create 8 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let t = Ewalk.Eprocess.create g rng ~start:0 in
    Ewalk.Eprocess.step t;
    let w = Ewalk.Eprocess.position t in
    Hashtbl.replace counts w
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts w))
  done;
  Alcotest.(check int) "four blue options" 4 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "within 5% of uniform" true
        (abs (c - (trials / 4)) < trials / 20))
    counts

(* -- Rotor-router ------------------------------------------------------------ *)

let rotor_deterministic () =
  let g = Gen_classic.torus2d 4 4 in
  let run () =
    let t = Rotor.create g (Rng.create ~seed:7 ()) ~start:0 in
    let acc = ref [] in
    for _ = 1 to 100 do
      Rotor.step t;
      acc := Rotor.position t :: !acc
    done;
    !acc
  in
  Alcotest.(check (list int)) "same trajectory" (run ()) (run ())

let rotor_covers_within_md () =
  (* Yanovski et al.: rotor-router covers within O(m D); check a generous
     multiple on several graphs. *)
  List.iter
    (fun g ->
      let m = Graph.m g and d = Traversal.diameter g in
      let t = Rotor.create g (Rng.create ~seed:8 ()) ~start:0 in
      match Cover.run_until_vertex_cover ~cap:(8 * m * (d + 1)) (Rotor.process t) with
      | Some _ -> ()
      | None -> Alcotest.fail "rotor exceeded 8 m D")
    [
      Gen_classic.cycle 30;
      Gen_classic.torus2d 6 6;
      Gen_classic.binary_tree 5;
      Gen_classic.petersen ();
    ]

let rotor_eulerian_period () =
  (* After stabilisation the rotor walk is periodic with period 2m,
     traversing an Eulerian circuit of the doubled graph. *)
  List.iter
    (fun g ->
      let m = Graph.m g and d = Traversal.diameter g in
      let t = Rotor.create g (Rng.create ~seed:9 ()) ~start:0 in
      (* Warm up far beyond the O(mD) stabilisation time. *)
      Cover.run_steps (Rotor.process t) (20 * m * (d + 1));
      let positions = Array.init (2 * m) (fun _ ->
          Rotor.step t;
          Rotor.position t)
      in
      for i = 0 to (2 * m) - 1 do
        Rotor.step t;
        Alcotest.(check int) "period 2m" positions.(i) (Rotor.position t)
      done)
    [ Gen_classic.cycle 6; Gen_classic.torus2d 3 3; Gen_classic.complete 4 ]

let rotor_offsets_advance () =
  let g = Gen_classic.cycle 5 in
  let t = Rotor.create g (Rng.create ()) ~start:0 in
  let before = Rotor.rotor_offset t 0 in
  Rotor.step t;
  Alcotest.(check int) "rotor advanced" ((before + 1) mod 2)
    (Rotor.rotor_offset t 0)

(* -- RWC(d) ------------------------------------------------------------------- *)

let rwc_validation () =
  let g = Gen_classic.cycle 4 in
  Alcotest.check_raises "d < 1" (Invalid_argument "Rwc.create: d < 1")
    (fun () -> ignore (Rwc.create ~d:0 g (Rng.create ()) ~start:0))

let rwc_covers () =
  let g = Gen_regular.random_regular_connected (Rng.create ~seed:10 ()) 100 4 in
  List.iter
    (fun seed ->
      let t = Rwc.create ~d:2 g (Rng.create ~seed ()) ~start:0 in
      match
        Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) (Rwc.process t)
      with
      | Some _ -> ()
      | None -> Alcotest.failf "seed %d: rwc(2) failed to cover" seed)
    [ 11; 12; 13 ]

let rwc_beats_srw_on_average () =
  (* Avin–Krishnamachari's observation: the power of choice reduces cover
     time.  Compare means over a few trials on a torus. *)
  let g = Gen_classic.torus2d 12 12 in
  let mean process_of =
    let total = ref 0 in
    for seed = 0 to 4 do
      let rng = Rng.create ~seed:(100 + seed) () in
      match
        Cover.run_until_vertex_cover ~cap:(Cover.default_cap g)
          (process_of rng)
      with
      | Some t -> total := !total + t
      | None -> Alcotest.fail "capped"
    done;
    float_of_int !total /. 5.0
  in
  let srw_mean = mean (fun rng -> Srw.process (Srw.create g rng ~start:0)) in
  let rwc_mean =
    mean (fun rng -> Rwc.process (Rwc.create ~d:2 g rng ~start:0))
  in
  Alcotest.(check bool)
    (Printf.sprintf "rwc %.0f < srw %.0f" rwc_mean srw_mean)
    true (rwc_mean < srw_mean)

(* -- Fair strategies ----------------------------------------------------------- *)

let luf_covers_and_equalises () =
  let g = Gen_classic.torus2d 5 5 in
  let t =
    Fair.create ~strategy:Fair.Least_used_first g (Rng.create ~seed:12 ())
      ~start:0
  in
  (match Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) (Fair.process t) with
  | Some _ -> ()
  | None -> Alcotest.fail "luf failed to cover");
  (* Long-run edge frequencies equalise (Cooper et al.): after many steps the
     max/min traversal ratio is small. *)
  Cover.run_steps (Fair.process t) (200 * Graph.m g);
  let lo = ref max_int and hi = ref 0 in
  for e = 0 to Graph.m g - 1 do
    let c = Fair.traversals t e in
    if c < !lo then lo := c;
    if c > !hi then hi := c
  done;
  Alcotest.(check bool)
    (Printf.sprintf "traversals in [%d, %d]" !lo !hi)
    true
    (!lo > 0 && !hi <= 3 * !lo)

let oldest_first_covers_small () =
  let g = Gen_classic.cycle 12 in
  List.iter
    (fun seed ->
      let t =
        Fair.create ~strategy:Fair.Oldest_first g (Rng.create ~seed ())
          ~start:0
      in
      match Cover.run_until_vertex_cover ~cap:1_000_000 (Fair.process t) with
      | Some _ -> ()
      | None -> Alcotest.failf "seed %d: oldest-first failed on a cycle" seed)
    [ 13; 14; 15 ]

let fair_deterministic_without_random_ties () =
  let g = Gen_classic.torus2d 4 4 in
  let run () =
    let t =
      Fair.create ~strategy:Fair.Least_used_first g (Rng.create ~seed:14 ())
        ~start:0
    in
    let acc = ref [] in
    for _ = 1 to 64 do
      Fair.step t;
      acc := Fair.position t :: !acc
    done;
    !acc
  in
  Alcotest.(check (list int)) "deterministic" (run ()) (run ())

(* -- V-process ------------------------------------------------------------------ *)

let vprocess_prefers_unvisited () =
  (* On a star from the centre, the V-process must visit all leaves in the
     minimum possible 2(n-1) - 1 steps: it never revisits a leaf while an
     unvisited one remains. *)
  let g = Gen_classic.star 6 in
  let t = Vprocess.create g (Rng.create ~seed:15 ()) ~start:0 in
  match Cover.run_until_vertex_cover ~cap:1_000 (Vprocess.process t) with
  | Some s -> Alcotest.(check int) "optimal star tour" 9 s
  | None -> Alcotest.fail "v-process capped on star"

let vprocess_covers () =
  let g = Gen_regular.random_regular_connected (Rng.create ~seed:16 ()) 100 3 in
  List.iter
    (fun seed ->
      let t = Vprocess.create g (Rng.create ~seed ()) ~start:0 in
      match
        Cover.run_until_vertex_cover ~cap:(Cover.default_cap g)
          (Vprocess.process t)
      with
      | Some _ -> ()
      | None -> Alcotest.failf "seed %d: v-process failed to cover" seed)
    [ 17; 18; 19 ]

(* -- cross-process properties ----------------------------------------------------- *)

let prop_all_processes_cover_connected_graphs =
  QCheck.Test.make ~name:"every process covers a connected even graph"
    ~count:25
    QCheck.(pair small_int (int_range 0 5))
    (fun (seed, which) ->
      let g = Gen_regular.cycle_union (Rng.create ~seed ()) 14 2 in
      let rng = Rng.create ~seed:(seed + 50) () in
      let p =
        match which with
        | 0 -> Ewalk.Eprocess.process (Ewalk.Eprocess.create g rng ~start:0)
        | 1 -> Srw.process (Srw.create g rng ~start:0)
        | 2 -> Rotor.process (Rotor.create g rng ~start:0)
        | 3 -> Rwc.process (Rwc.create ~d:2 g rng ~start:0)
        | 4 ->
            Fair.process
              (Fair.create ~strategy:Fair.Least_used_first g rng ~start:0)
        | _ -> Vprocess.process (Vprocess.create g rng ~start:0)
      in
      Cover.run_until_vertex_cover ~cap:(Cover.default_cap g) p <> None)

let prop_coverage_counts_match_steps =
  QCheck.Test.make ~name:"total visit counts = steps + 1" ~count:25
    QCheck.(small_int)
    (fun seed ->
      let g = Gen_regular.cycle_union (Rng.create ~seed ()) 12 2 in
      let rng = Rng.create ~seed:(seed + 99) () in
      let t = Srw.create g rng ~start:0 in
      Cover.run_steps (Srw.process t) 500;
      let total = ref 0 in
      for v = 0 to Graph.n g - 1 do
        total := !total + Coverage.visit_count (Srw.coverage t) v
      done;
      !total = 501)

let () =
  Alcotest.run "walks"
    [
      ( "srw",
        [
          Alcotest.test_case "covers cycle" `Quick srw_covers_cycle;
          Alcotest.test_case "validation" `Quick srw_validation;
          Alcotest.test_case "stationary visits" `Quick srw_stationary_visits;
          Alcotest.test_case "lazy stays" `Quick lazy_walk_stays;
          Alcotest.test_case "weighted bias" `Quick weighted_walk_bias;
          Alcotest.test_case "weighted validation" `Quick
            weighted_walk_validation;
          Alcotest.test_case "weighted uniform" `Quick
            weighted_uniform_equals_srw_distribution;
          Alcotest.test_case "hitting time" `Quick srw_hitting_time;
          Alcotest.test_case "one-step uniform" `Quick srw_one_step_uniform;
          Alcotest.test_case "e-process blue choice uniform" `Quick
            eprocess_blue_choice_uniform;
        ] );
      ( "rotor",
        [
          Alcotest.test_case "deterministic" `Quick rotor_deterministic;
          Alcotest.test_case "covers within mD" `Quick rotor_covers_within_md;
          Alcotest.test_case "eulerian period" `Quick rotor_eulerian_period;
          Alcotest.test_case "offsets advance" `Quick rotor_offsets_advance;
        ] );
      ( "rwc",
        [
          Alcotest.test_case "validation" `Quick rwc_validation;
          Alcotest.test_case "covers" `Quick rwc_covers;
          Alcotest.test_case "beats srw" `Quick rwc_beats_srw_on_average;
        ] );
      ( "fair",
        [
          Alcotest.test_case "luf covers and equalises" `Quick
            luf_covers_and_equalises;
          Alcotest.test_case "oldest-first small" `Quick
            oldest_first_covers_small;
          Alcotest.test_case "deterministic" `Quick
            fair_deterministic_without_random_ties;
        ] );
      ( "vprocess",
        [
          Alcotest.test_case "prefers unvisited" `Quick
            vprocess_prefers_unvisited;
          Alcotest.test_case "covers" `Quick vprocess_covers;
        ] );
      ( "properties",
        [
          qcheck prop_all_processes_cover_connected_graphs;
          qcheck prop_coverage_counts_match_steps;
        ] );
    ]
